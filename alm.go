// Package alm is a from-scratch Go reproduction of "Cracking Down
// MapReduce Failure Amplification through Analytics Logging and
// Migration" (Wang, Fu, Yu — IPPS 2015).
//
// It bundles a YARN-like MapReduce runtime running on a deterministic
// discrete-event cluster simulator, the stock fault-handling baseline
// whose failure amplifications the paper analyses, and the paper's ALM
// framework (ALG analytics logging + SFM speculative fast migration with
// FCM collective merging). The package is a facade: it re-exports the
// stable public surface of the internal packages so applications need a
// single import.
//
// Quick start:
//
//	spec := alm.JobSpec{
//		Workload:   alm.Wordcount(),
//		InputBytes: 10 << 30,
//		NumReduces: 1,
//		Mode:       alm.ModeALM,
//	}
//	res, err := alm.Run(spec, alm.DefaultClusterSpec(), nil)
//
// Inject the paper's failures with the fault helpers:
//
//	plan := alm.StopNodeOfTaskAtReduceProgress(alm.ReduceTask, 0, 0.5)
//	res, err := alm.Run(spec, alm.DefaultClusterSpec(), plan)
//
// and reproduce any evaluation artifact via RunExperiment("fig8", ...).
package alm

import (
	"time"

	"alm/internal/core"
	"alm/internal/engine"
	"alm/internal/experiments"
	"alm/internal/faults"
	"alm/internal/mr"
	"alm/internal/topology"
	"alm/internal/trace"
	"alm/internal/workloads"
)

// Core job types.
type (
	// JobSpec describes a MapReduce job: workload, input size, reducers,
	// configuration and fault-tolerance mode.
	JobSpec = engine.JobSpec
	// Result is a completed job's outcome: duration, output records,
	// failure accounting, counters and the event/timeline trace.
	Result = engine.Result
	// ClusterSpec describes the simulated testbed.
	ClusterSpec = engine.ClusterSpec
	// Mode selects the fault-tolerance framework.
	Mode = engine.Mode
	// Config is the job configuration (the paper's Table I parameters
	// plus stock-YARN failure-handling constants).
	Config = mr.Config
	// CostModel holds per-task processing rates.
	CostModel = mr.CostModel
	// Workload bundles a benchmark's map/reduce functions and size model.
	Workload = workloads.Workload
	// Record is one key/value pair.
	Record = mr.Record
	// Hardware is a node's performance profile.
	Hardware = topology.Hardware
	// ALGOptions tunes analytics logging.
	ALGOptions = core.ALGOptions
	// SFMOptions tunes speculative fast migration.
	SFMOptions = core.SFMOptions
	// ReplicationLevel scopes ALG's HDFS replica placement.
	ReplicationLevel = mr.ReplicationLevel
	// FaultPlan is a set of fault injections for one run.
	FaultPlan = faults.Plan
	// TaskType selects map or reduce tasks in fault plans.
	TaskType = faults.TaskType
	// Trace is the per-run event log and timeline collector.
	Trace = trace.Collector
	// TraceEvent is one discrete trace event.
	TraceEvent = trace.Event
	// ExperimentTable is a reproduced figure or table.
	ExperimentTable = experiments.Table
	// ExperimentOptions scales and seeds experiment runs.
	ExperimentOptions = experiments.Options
	// ISSOptions enables related-work ISS semantics: MOFs replicated to
	// HDFS at map commit.
	ISSOptions = engine.ISSOptions
	// CheckpointOptions enables the heavyweight full-image checkpointing
	// the paper's Section III contrasts ALG against.
	CheckpointOptions = engine.CheckpointOptions
)

// Fault-tolerance modes.
const (
	// ModeYARN is the stock baseline (task re-execution; amplification
	// reproduces).
	ModeYARN = engine.ModeYARN
	// ModeALG adds analytics logging and log replay.
	ModeALG = engine.ModeALG
	// ModeSFM adds Algorithm 1 scheduling and FCM recovery.
	ModeSFM = engine.ModeSFM
	// ModeALM is the full framework (SFM + ALG).
	ModeALM = engine.ModeALM
)

// Task types for fault plans.
const (
	MapTask    = faults.Map
	ReduceTask = faults.Reduce
)

// Replication levels for ALG artifacts.
const (
	ReplicateNode    = mr.ReplicateNode
	ReplicateRack    = mr.ReplicateRack
	ReplicateCluster = mr.ReplicateCluster
)

// Run executes one job on a fresh simulated cluster.
func Run(spec JobSpec, cs ClusterSpec, plan *FaultPlan) (Result, error) {
	return engine.Run(spec, cs, plan)
}

// DefaultClusterSpec returns the paper's 20-worker testbed (SSD, 10 GbE,
// two racks).
func DefaultClusterSpec() ClusterSpec { return engine.DefaultClusterSpec() }

// DefaultConfig returns the paper's Table I job configuration.
func DefaultConfig() Config { return mr.DefaultConfig() }

// DefaultALGOptions returns the paper's ALG settings (10 s interval,
// rack-level replication).
func DefaultALGOptions() ALGOptions { return core.DefaultALGOptions() }

// DefaultSFMOptions returns the paper's SFM settings (FCM cap 10).
func DefaultSFMOptions() SFMOptions { return core.DefaultSFMOptions() }

// Terasort returns the paper's Terasort benchmark (100-byte records,
// identity map/reduce, range-partitioned total order).
func Terasort() *Workload { return workloads.Terasort() }

// Wordcount returns the paper's Wordcount benchmark (skewed vocabulary,
// map-side combiner, tiny output).
func Wordcount() *Workload { return workloads.Wordcount() }

// Secondarysort returns the paper's Secondarysort benchmark (composite
// keys, grouping by primary key with secondary ordering).
func Secondarysort() *Workload { return workloads.Secondarysort() }

// WorkloadByName resolves "terasort", "wordcount" or "secondarysort".
func WorkloadByName(name string) (*Workload, error) { return workloads.ByName(name) }

// Fault-plan helpers mirroring the paper's injections.
func FailTaskAtProgress(typ TaskType, idx int, frac float64) *FaultPlan {
	return faults.FailTaskAtProgress(typ, idx, frac)
}

// FailTasksAtProgress fails the first n tasks of a type at the given
// per-task progress (the paper's concurrent-failure experiments).
func FailTasksAtProgress(typ TaskType, n int, frac float64) *FaultPlan {
	return faults.FailTasksAtProgress(typ, n, frac)
}

// StopNodeOfTaskAtReduceProgress stops the network of the node hosting
// the task when the job's reduce phase reaches the fraction.
func StopNodeOfTaskAtReduceProgress(typ TaskType, idx int, frac float64) *FaultPlan {
	return faults.StopNodeOfTaskAtReduceProgress(typ, idx, frac)
}

// StopMOFNodeAtJobProgress stops a node holding map output but no
// ReduceTask when overall job progress reaches the fraction (the spatial
// amplification scenario).
func StopMOFNodeAtJobProgress(frac float64) *FaultPlan {
	return faults.StopMOFNodeAtJobProgress(frac)
}

// SlowNodeOfTaskAtReduceProgress degrades the disks of the node hosting
// the task to factor of their bandwidth — the paper's faulty-but-alive
// node whose local relaunches straggle.
func SlowNodeOfTaskAtReduceProgress(typ TaskType, idx int, frac, factor float64) *FaultPlan {
	return faults.SlowNodeOfTaskAtReduceProgress(typ, idx, frac, factor)
}

// PartitionNodeOfTaskAtReduceProgress transiently partitions the node
// hosting the task when the reduce phase reaches the fraction; the
// network heals after healAfter and the cluster re-admits the node.
func PartitionNodeOfTaskAtReduceProgress(typ TaskType, idx int, frac float64, healAfter time.Duration) *FaultPlan {
	return faults.PartitionNodeOfTaskAtReduceProgress(typ, idx, frac, healAfter)
}

// FlakyLinkAtTime makes the (a, b) link flaky at time t: connection
// attempts fail with probability failProb and, when 0 < bwFactor < 1,
// the pair's bandwidth drops to bwFactor of the narrower NIC. The link
// stabilises after healAfter (zero: stays flaky).
func FlakyLinkAtTime(t time.Duration, a, b int, failProb, bwFactor float64, healAfter time.Duration) *FaultPlan {
	return faults.FlakyLinkAtTime(t, a, b, failProb, bwFactor, healAfter)
}

// CrashRackAtTime crashes every node of the rack at time t (a correlated
// PDU or top-of-rack switch failure).
func CrashRackAtTime(t time.Duration, rack int) *FaultPlan {
	return faults.CrashRackAtTime(t, rack)
}

// RunExperiment reproduces one paper artifact by ID (fig1, fig2, fig3,
// fig4, fig8, fig9, fig10, table2, fig11, fig12, fig13, fig14, fig15, or
// ablations).
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentTable, error) {
	f, ok := experiments.ByID(id)
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return f(opt)
}

// ExperimentIDs lists the reproducible artifacts in paper order.
func ExperimentIDs() []string {
	out := make([]string, len(experiments.Registry))
	for i, e := range experiments.Registry {
		out[i] = e.ID
	}
	return out
}

// ExperimentDescription returns the one-line description for an ID.
func ExperimentDescription(id string) string {
	for _, e := range experiments.Registry {
		if e.ID == id {
			return e.Desc
		}
	}
	return ""
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "alm: unknown experiment " + string(e) + " (see ExperimentIDs)"
}
