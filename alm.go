// Package alm is a from-scratch Go reproduction of "Cracking Down
// MapReduce Failure Amplification through Analytics Logging and
// Migration" (Wang, Fu, Yu — IPPS 2015).
//
// It bundles a YARN-like MapReduce runtime running on a deterministic
// discrete-event cluster simulator, the stock fault-handling baseline
// whose failure amplifications the paper analyses, and the paper's ALM
// framework (ALG analytics logging + SFM speculative fast migration with
// FCM collective merging). The package is a facade: it re-exports the
// stable public surface of the internal packages so applications need a
// single import.
//
// Quick start:
//
//	spec := alm.JobSpec{
//		Workload:   alm.Wordcount(),
//		InputBytes: 10 << 30,
//		NumReduces: 1,
//		Mode:       alm.ModeALM,
//	}
//	res, err := alm.Run(spec, alm.DefaultClusterSpec())
//
// Everything optional arrives through functional options — inject the
// paper's failures, watch the run live, or collect metrics:
//
//	res, err := alm.Run(spec, alm.DefaultClusterSpec(),
//		alm.WithFaults(alm.StopNodeOfTaskAtReduceProgress(alm.ReduceTask, 0, 0.5)),
//		alm.WithMetrics(),
//		alm.WithObserver(alm.ObserverFuncs{
//			Event: func(e alm.TraceEvent) { fmt.Println(e) },
//		}))
//
// and reproduce any evaluation artifact via RunExperiment("fig8", ...).
package alm

import (
	"strings"
	"time"

	"alm/internal/core"
	"alm/internal/engine"
	"alm/internal/experiments"
	"alm/internal/faults"
	"alm/internal/metrics"
	"alm/internal/mr"
	"alm/internal/topology"
	"alm/internal/trace"
	"alm/internal/workloads"
)

// Core job types.
type (
	// JobSpec describes a MapReduce job: workload, input size, reducers,
	// configuration and fault-tolerance mode.
	JobSpec = engine.JobSpec
	// Result is a completed job's outcome: duration, output records,
	// failure accounting, counters and the event/timeline trace.
	Result = engine.Result
	// ClusterSpec describes the simulated testbed.
	ClusterSpec = engine.ClusterSpec
	// Mode selects the fault-tolerance framework.
	Mode = engine.Mode
	// Config is the job configuration (the paper's Table I parameters
	// plus stock-YARN failure-handling constants).
	Config = mr.Config
	// CostModel holds per-task processing rates.
	CostModel = mr.CostModel
	// Workload bundles a benchmark's map/reduce functions and size model.
	Workload = workloads.Workload
	// Record is one key/value pair.
	Record = mr.Record
	// Hardware is a node's performance profile.
	Hardware = topology.Hardware
	// ALGOptions tunes analytics logging.
	ALGOptions = core.ALGOptions
	// SFMOptions tunes speculative fast migration.
	SFMOptions = core.SFMOptions
	// ReplicationLevel scopes ALG's HDFS replica placement.
	ReplicationLevel = mr.ReplicationLevel
	// FaultPlan is a set of fault injections for one run.
	FaultPlan = faults.Plan
	// TaskType selects map or reduce tasks in fault plans.
	TaskType = faults.TaskType
	// Trace is the per-run event log and timeline collector.
	Trace = trace.Collector
	// TraceEvent is one discrete trace event.
	TraceEvent = trace.Event
	// ExperimentTable is a reproduced figure or table.
	ExperimentTable = experiments.Table
	// ExperimentOptions scales and seeds experiment runs.
	ExperimentOptions = experiments.Options
	// ISSOptions enables related-work ISS semantics: MOFs replicated to
	// HDFS at map commit.
	ISSOptions = engine.ISSOptions
	// CheckpointOptions enables the heavyweight full-image checkpointing
	// the paper's Section III contrasts ALG against.
	CheckpointOptions = engine.CheckpointOptions
	// ShuffleOptions selects the shuffle data path; Remote pushes MOF
	// partition segments to the replicated shuffle tier so map-node loss
	// no longer invalidates delivered map output.
	ShuffleOptions = engine.ShuffleOptions
	// RunOption configures a Run call (see WithFaults, WithObserver,
	// WithMetrics, WithTrace).
	RunOption = engine.RunOption
	// Observer receives streaming callbacks — events, progress samples and
	// metrics deltas — in deterministic sim-time order during a run.
	Observer = engine.Observer
	// ObserverFuncs adapts plain functions to Observer; nil fields are
	// skipped.
	ObserverFuncs = engine.ObserverFuncs
	// ProgressSample is one point of the live job timeline.
	ProgressSample = engine.ProgressSample
	// MetricsSnapshot is an immutable, deterministically ordered metrics
	// state with Prometheus-text and JSON exporters.
	MetricsSnapshot = metrics.Snapshot
	// MetricsSeries is one named, labelled series inside a snapshot or an
	// observer delta.
	MetricsSeries = metrics.Series
	// MetricsDelta is the set of series that changed since the previous
	// observer delivery, in sorted series order.
	MetricsDelta = []metrics.Series
)

// Fault-tolerance modes.
const (
	// ModeYARN is the stock baseline (task re-execution; amplification
	// reproduces).
	ModeYARN = engine.ModeYARN
	// ModeALG adds analytics logging and log replay.
	ModeALG = engine.ModeALG
	// ModeSFM adds Algorithm 1 scheduling and FCM recovery.
	ModeSFM = engine.ModeSFM
	// ModeALM is the full framework (SFM + ALG).
	ModeALM = engine.ModeALM
)

// Task types for fault plans.
const (
	MapTask    = faults.Map
	ReduceTask = faults.Reduce
)

// Replication levels for ALG artifacts.
const (
	ReplicateNode    = mr.ReplicateNode
	ReplicateRack    = mr.ReplicateRack
	ReplicateCluster = mr.ReplicateCluster
)

// Run executes one job on a fresh simulated cluster. The base run is
// lean — no trace attached, no metrics exposed; opt in per call:
//
//	alm.Run(spec, cs,
//		alm.WithFaults(plan),   // inject failures
//		alm.WithObserver(obs),  // stream events/progress/metrics deltas
//		alm.WithMetrics(),      // expose Result.Metrics
//		alm.WithTrace())        // expose Result.Trace
func Run(spec JobSpec, cs ClusterSpec, opts ...RunOption) (Result, error) {
	all := make([]RunOption, 0, len(opts)+1)
	all = append(all, engine.WithoutTrace())
	all = append(all, opts...)
	return engine.Run(spec, cs, all...)
}

// WithFaults injects the given fault plan into the run.
func WithFaults(plan *FaultPlan) RunOption { return engine.WithPlan(plan) }

// WithObserver streams the run's events, progress samples and metrics
// deltas to obs while it executes.
func WithObserver(obs Observer) RunOption { return engine.WithObserver(obs) }

// WithMetrics attaches the final metrics snapshot to Result.Metrics.
func WithMetrics() RunOption { return engine.WithMetrics() }

// WithTrace attaches the full event/timeline trace to Result.Trace.
func WithTrace() RunOption { return engine.WithTrace() }

// DefaultClusterSpec returns the paper's 20-worker testbed (SSD, 10 GbE,
// two racks).
func DefaultClusterSpec() ClusterSpec { return engine.DefaultClusterSpec() }

// DefaultConfig returns the paper's Table I job configuration.
func DefaultConfig() Config { return mr.DefaultConfig() }

// DefaultALGOptions returns the paper's ALG settings (10 s interval,
// rack-level replication).
func DefaultALGOptions() ALGOptions { return core.DefaultALGOptions() }

// DefaultSFMOptions returns the paper's SFM settings (FCM cap 10).
func DefaultSFMOptions() SFMOptions { return core.DefaultSFMOptions() }

// Terasort returns the paper's Terasort benchmark (100-byte records,
// identity map/reduce, range-partitioned total order).
func Terasort() *Workload { return workloads.Terasort() }

// Wordcount returns the paper's Wordcount benchmark (skewed vocabulary,
// map-side combiner, tiny output).
func Wordcount() *Workload { return workloads.Wordcount() }

// Secondarysort returns the paper's Secondarysort benchmark (composite
// keys, grouping by primary key with secondary ordering).
func Secondarysort() *Workload { return workloads.Secondarysort() }

// WorkloadByName resolves "terasort", "wordcount" or "secondarysort".
func WorkloadByName(name string) (*Workload, error) { return workloads.ByName(name) }

// Fault-plan helpers mirroring the paper's injections.
func FailTaskAtProgress(typ TaskType, idx int, frac float64) *FaultPlan {
	return faults.FailTaskAtProgress(typ, idx, frac)
}

// FailTasksAtProgress fails the first n tasks of a type at the given
// per-task progress (the paper's concurrent-failure experiments).
func FailTasksAtProgress(typ TaskType, n int, frac float64) *FaultPlan {
	return faults.FailTasksAtProgress(typ, n, frac)
}

// StopNodeOfTaskAtReduceProgress stops the network of the node hosting
// the task when the job's reduce phase reaches the fraction.
func StopNodeOfTaskAtReduceProgress(typ TaskType, idx int, frac float64) *FaultPlan {
	return faults.StopNodeOfTaskAtReduceProgress(typ, idx, frac)
}

// StopMOFNodeAtJobProgress stops a node holding map output but no
// ReduceTask when overall job progress reaches the fraction (the spatial
// amplification scenario).
func StopMOFNodeAtJobProgress(frac float64) *FaultPlan {
	return faults.StopMOFNodeAtJobProgress(frac)
}

// CrashMOFNodeAtJobProgress crashes a node holding map output but no
// ReduceTask when overall job progress reaches the fraction — the
// scenario the remote shuffle tier exists to survive without map
// recomputation.
func CrashMOFNodeAtJobProgress(frac float64) *FaultPlan {
	return faults.CrashMOFNodeAtJobProgress(frac)
}

// CrashTierNodeAtTime kills the remote-shuffle service on tier ordinal
// ord at t; healAfter > 0 restarts it empty after that delay. Requires
// ShuffleOptions.Remote.
func CrashTierNodeAtTime(t time.Duration, ord int, healAfter time.Duration) *FaultPlan {
	return faults.CrashTierNodeAtTime(t, ord, healAfter)
}

// HotPartitionAtTime marks reduce partition part as shuffle-tier hot at
// t: its primary replica serves at factor of its bandwidth until
// healAfter (0 = permanent). Requires ShuffleOptions.Remote.
func HotPartitionAtTime(t time.Duration, part int, factor float64, healAfter time.Duration) *FaultPlan {
	return faults.HotPartitionAtTime(t, part, factor, healAfter)
}

// SlowNodeOfTaskAtReduceProgress degrades the disks of the node hosting
// the task to factor of their bandwidth — the paper's faulty-but-alive
// node whose local relaunches straggle.
func SlowNodeOfTaskAtReduceProgress(typ TaskType, idx int, frac, factor float64) *FaultPlan {
	return faults.SlowNodeOfTaskAtReduceProgress(typ, idx, frac, factor)
}

// PartitionNodeOfTaskAtReduceProgress transiently partitions the node
// hosting the task when the reduce phase reaches the fraction; the
// network heals after healAfter and the cluster re-admits the node.
func PartitionNodeOfTaskAtReduceProgress(typ TaskType, idx int, frac float64, healAfter time.Duration) *FaultPlan {
	return faults.PartitionNodeOfTaskAtReduceProgress(typ, idx, frac, healAfter)
}

// FlakyLinkAtTime makes the (a, b) link flaky at time t: connection
// attempts fail with probability failProb and, when 0 < bwFactor < 1,
// the pair's bandwidth drops to bwFactor of the narrower NIC. The link
// stabilises after healAfter (zero: stays flaky).
func FlakyLinkAtTime(t time.Duration, a, b int, failProb, bwFactor float64, healAfter time.Duration) *FaultPlan {
	return faults.FlakyLinkAtTime(t, a, b, failProb, bwFactor, healAfter)
}

// CrashRackAtTime crashes every node of the rack at time t (a correlated
// PDU or top-of-rack switch failure).
func CrashRackAtTime(t time.Duration, rack int) *FaultPlan {
	return faults.CrashRackAtTime(t, rack)
}

// RunExperiment reproduces one paper artifact by ID (fig1, fig2, fig3,
// fig4, fig8, fig9, fig10, table2, fig11, fig12, fig13, fig14, fig15, or
// ablations).
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentTable, error) {
	e, ok := experiments.Lookup(id)
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return e.Run(opt)
}

// ExperimentIDs lists the reproducible artifacts in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentDescription returns the one-line description for an ID (""
// when unknown; both go through the registry's shared index).
func ExperimentDescription(id string) string { return experiments.Describe(id) }

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "alm: unknown experiment " + string(e) +
		" (valid: " + strings.Join(experiments.IDs(), ", ") + ")"
}
