package alm

import (
	"strings"
	"testing"
)

func TestFacadeQuickJob(t *testing.T) {
	spec := JobSpec{
		Workload:   Wordcount(),
		InputBytes: 1 << 30,
		NumReduces: 1,
		Mode:       ModeALM,
		Seed:       1,
	}
	res, err := Run(spec, DefaultClusterSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.Output) == 0 {
		t.Fatalf("facade job failed: %+v", res.FailReason)
	}
}

func TestFacadeFaultPlan(t *testing.T) {
	spec := JobSpec{
		Workload:   Terasort(),
		InputBytes: 2 << 30,
		NumReduces: 4,
		Mode:       ModeSFM,
		Seed:       1,
	}
	res, err := Run(spec, DefaultClusterSpec(), WithFaults(FailTaskAtProgress(ReduceTask, 0, 0.5)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("job failed: %s", res.FailReason)
	}
	if res.ReduceAttemptFailures == 0 {
		t.Fatal("fault plan did not inject a failure")
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 16 {
		t.Fatalf("ExperimentIDs = %d entries, want 16", len(ids))
	}
	if ExperimentDescription("fig8") == "" {
		t.Fatal("missing description for fig8")
	}
	if _, err := RunExperiment("not-an-id", ExperimentOptions{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	} else if !strings.Contains(err.Error(), "not-an-id") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestRunExperimentQuick(t *testing.T) {
	tbl, err := RunExperiment("fig12", ExperimentOptions{Scale: 1.0 / 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("experiment returned no rows")
	}
	if !strings.Contains(tbl.Render(), "fig12") {
		t.Fatal("render missing experiment id")
	}
}

func TestWorkloadByName(t *testing.T) {
	if _, err := WorkloadByName("terasort"); err != nil {
		t.Fatal(err)
	}
	if _, err := WorkloadByName("bogus"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}
