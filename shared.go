package alm

import (
	"fmt"
	"time"

	"alm/internal/cluster"
	"alm/internal/engine"
	"alm/internal/faults"
	"alm/internal/mr"
	"alm/internal/sim"
	"alm/internal/topology"
)

// SharedCluster hosts several MapReduce jobs on one simulated cluster, so
// they contend for containers, disks and the network like tenants of a
// real YARN installation. Jobs are submitted with Submit and executed
// together by Run.
type SharedCluster struct {
	eng  *sim.Engine
	cl   *cluster.Cluster
	jobs []*SubmittedJob
}

// SubmittedJob is a handle to a job running on a SharedCluster.
type SubmittedJob struct {
	job *engine.Job
}

// Result returns the job's outcome; valid after SharedCluster.Run.
func (s *SubmittedJob) Result() Result { return s.job.Result() }

// Finished reports whether the job reached a terminal state.
func (s *SubmittedJob) Finished() bool { return s.job.Finished() }

// NewSharedCluster builds a cluster for multi-job runs. The zero
// ClusterSpec means the paper testbed. Seed seeds the simulation; the
// per-job JobSpec seeds only affect data generation.
func NewSharedCluster(cs ClusterSpec, seed int64) (*SharedCluster, error) {
	if cs.Racks == 0 {
		cs = engine.DefaultClusterSpec()
	}
	topo, err := topology.New(topology.Options{
		Racks:            cs.Racks,
		NodesPerRack:     cs.NodesPerRack,
		HW:               cs.HW,
		Oversubscription: cs.Oversubscription,
	})
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(seed)
	eng.SetMaxEvents(100_000_000)
	conf := mr.DefaultConfig()
	cl := cluster.New(eng, topo, cluster.Options{
		HeartbeatInterval: conf.HeartbeatInterval,
		NodeExpiry:        conf.NodeExpiry,
	})
	return &SharedCluster{eng: eng, cl: cl}, nil
}

// Submit registers a job (and optional fault plan) for the next Run.
// Give concurrent jobs distinct JobSpec.Name values.
func (sc *SharedCluster) Submit(spec JobSpec, plan *faults.Plan) (*SubmittedJob, error) {
	j, err := engine.NewJob(spec, sc.cl, plan)
	if err != nil {
		return nil, err
	}
	s := &SubmittedJob{job: j}
	sc.jobs = append(sc.jobs, s)
	return s, nil
}

// Run starts every submitted job and drives the simulation until all of
// them finish or maxVirtual elapses (zero means 6 hours). It returns an
// error when some job never reached a terminal state.
func (sc *SharedCluster) Run(maxVirtual time.Duration) error {
	if len(sc.jobs) == 0 {
		return fmt.Errorf("alm: no jobs submitted")
	}
	if maxVirtual <= 0 {
		maxVirtual = 6 * time.Hour
	}
	remaining := len(sc.jobs)
	for _, s := range sc.jobs {
		if err := s.job.Start(func() {
			remaining--
			if remaining == 0 {
				sc.eng.Stop()
			}
		}); err != nil {
			return err
		}
	}
	sc.eng.Run(sim.Time(maxVirtual))
	for _, s := range sc.jobs {
		if !s.job.Finished() {
			return fmt.Errorf("alm: job %q did not finish within %v of virtual time",
				s.job.Spec.Name, maxVirtual)
		}
	}
	return nil
}

// Now returns the shared cluster's current virtual time.
func (sc *SharedCluster) Now() time.Duration { return time.Duration(sc.eng.Now()) }
