// Shared-cluster runs two tenants on one simulated YARN cluster — a
// production Terasort and an ad-hoc Wordcount — then injects a node
// failure and shows that ALM contains the damage to the affected tenant
// while both contend for the same containers, disks and network.
//
//	go run ./examples/shared-cluster
package main

import (
	"fmt"
	"log"
	"time"

	"alm"
)

func main() {
	sc, err := alm.NewSharedCluster(alm.ClusterSpec{}, 99)
	if err != nil {
		log.Fatal(err)
	}

	prod, err := sc.Submit(alm.JobSpec{
		Name:       "prod-terasort",
		Workload:   alm.Terasort(),
		InputBytes: 50 << 30,
		NumReduces: 12,
		Mode:       alm.ModeALM,
		Seed:       1,
	}, alm.StopNodeOfTaskAtReduceProgress(alm.ReduceTask, 2, 0.5))
	if err != nil {
		log.Fatal(err)
	}

	adhoc, err := sc.Submit(alm.JobSpec{
		Name:       "adhoc-wordcount",
		Workload:   alm.Wordcount(),
		InputBytes: 10 << 30,
		NumReduces: 2,
		Mode:       alm.ModeALM,
		Seed:       2,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	if err := sc.Run(4 * time.Hour); err != nil {
		log.Fatal(err)
	}

	report := func(name string, j *alm.SubmittedJob) {
		res := j.Result()
		status := "completed"
		if !res.Completed {
			status = "FAILED: " + res.FailReason
		}
		fmt.Printf("%-18s %-9s in %-14v  reduce failures: %d (healthy infected: %d)\n",
			name, status, res.Duration.Round(100*time.Millisecond),
			res.ReduceAttemptFailures, res.AdditionalReduceFailures)
	}
	fmt.Println("two tenants on one 20-node cluster; a node under the terasort dies mid-reduce:")
	report("prod-terasort", prod)
	report("adhoc-wordcount", adhoc)
	fmt.Printf("\ncluster virtual time at shutdown: %v\n", sc.Now().Round(time.Second))
}
