// Quickstart: run one MapReduce job on the simulated paper testbed with
// the full ALM framework enabled, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"alm"
)

func main() {
	// A 10 GB Wordcount with a single ReduceTask — the configuration the
	// paper uses to study temporal failure amplification.
	spec := alm.JobSpec{
		Workload:   alm.Wordcount(),
		InputBytes: 10 << 30,
		NumReduces: 1,
		Mode:       alm.ModeALM, // analytics logging + speculative fast migration
		Seed:       42,
	}

	res, err := alm.Run(spec, alm.DefaultClusterSpec())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("job completed in %v of virtual cluster time\n", res.Duration)
	fmt.Printf("map phase finished at %v\n", res.MapPhaseDone)
	fmt.Printf("word counts (%d distinct words):\n", len(res.Output))
	for i, rec := range res.Output {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(res.Output)-10)
			break
		}
		fmt.Printf("  %-12s %s\n", rec.Key, rec.Value)
	}

	// The same job, now with a ReduceTask dying at 70% progress. ALM logs
	// analytics progress periodically, so the recovery attempt resumes
	// from the last snapshot rather than repeating the whole task.
	plan := alm.FailTaskAtProgress(alm.ReduceTask, 0, 0.7)
	withFailure, err := alm.Run(spec, alm.DefaultClusterSpec(), alm.WithFaults(plan))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a ReduceTask failure at 70%%:\n")
	fmt.Printf("  ALM recovered in %v (%.1f%% over failure-free)\n",
		withFailure.Duration,
		(withFailure.Duration.Seconds()/res.Duration.Seconds()-1)*100)
	fmt.Printf("  log snapshots taken: %d, replays: %d\n",
		withFailure.Counters["alg.snapshots"],
		withFailure.Counters["alg.restores.local"]+withFailure.Counters["alg.restores.hdfs"])
}
