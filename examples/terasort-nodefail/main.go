// Terasort-nodefail replays the paper's spatial-amplification story
// (Fig. 4 and Table II): stopping one node that holds only map output
// files — no ReduceTask runs there — starves healthy ReduceTasks on other
// nodes until the stock scheduler kills them. SFM regenerates the lost
// map output proactively and advises waiting reducers, so no healthy task
// is infected.
//
//	go run ./examples/terasort-nodefail
package main

import (
	"fmt"
	"log"

	"alm"
)

func main() {
	spec := func(mode alm.Mode) alm.JobSpec {
		return alm.JobSpec{
			Workload:   alm.Terasort(),
			InputBytes: 100 << 30,
			NumReduces: 20,
			Mode:       mode,
			Seed:       11,
		}
	}
	plan := func() *alm.FaultPlan { return alm.StopMOFNodeAtJobProgress(0.55) }

	type outcome struct {
		name string
		res  alm.Result
	}
	var outcomes []outcome
	for _, m := range []struct {
		name string
		mode alm.Mode
	}{{"stock YARN", alm.ModeYARN}, {"SFM", alm.ModeSFM}} {
		res, err := alm.Run(spec(m.mode), alm.DefaultClusterSpec(), alm.WithFaults(plan()), alm.WithTrace())
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{m.name, res})
	}

	fmt.Printf("%-12s %14s %20s %24s\n", "scheduler", "job time", "reduce failures", "healthy tasks infected")
	for _, o := range outcomes {
		fmt.Printf("%-12s %14v %20d %24d\n",
			o.name, o.res.Duration.Round(1e8), o.res.ReduceAttemptFailures, o.res.AdditionalReduceFailures)
	}

	fmt.Println("\nhow the infection unfolds under stock YARN:")
	for _, e := range outcomes[0].res.Trace.Events {
		switch string(e.Kind) {
		case "node-crashed", "node-failure-detected", "task-failed", "map-rescheduled":
			if e.Task == "" || e.Task[0] == 'r' || e.Kind == "map-rescheduled" {
				fmt.Printf("  %7.1fs %-24s %-10s %s %s\n", e.At.Seconds(), e.Kind, e.Task, e.Node, e.Detail)
			}
		}
	}

	fmt.Println("\nand under SFM (wait advisory + proactive regeneration):")
	for _, e := range outcomes[1].res.Trace.Events {
		switch string(e.Kind) {
		case "node-crashed", "node-failure-detected", "map-rescheduled", "fcm-started", "wait-advisory":
			fmt.Printf("  %7.1fs %-24s %-10s %s %s\n", e.At.Seconds(), e.Kind, e.Task, e.Node, e.Detail)
		}
	}
}
