// Custom-workload shows how to bring your own MapReduce program to the
// runtime: an inverted-index job (document -> posting lists) defined
// entirely through the public Workload type, run under the full ALM
// framework with an injected node failure.
//
//	go run ./examples/custom-workload
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"

	"alm"
)

// invertedIndex builds term -> "doc:freq,doc:freq,..." posting lists.
func invertedIndex() *alm.Workload {
	vocabulary := []string{
		"failure", "amplification", "logging", "migration", "analytics",
		"shuffle", "merge", "reduce", "speculative", "recovery",
		"yarn", "hadoop", "cluster", "container", "scheduler",
	}
	return &alm.Workload{
		Name:              "inverted-index",
		AvgRecordBytes:    120, // one document line
		MapOutputRatio:    0.6, // term/doc pairs per input byte
		ReduceOutputRatio: 0.3,
		Map: func(docID, text string, emit func(k, v string)) {
			counts := map[string]int{}
			for _, w := range strings.Fields(text) {
				counts[w]++
			}
			terms := make([]string, 0, len(counts))
			for term := range counts {
				terms = append(terms, term)
			}
			sort.Strings(terms) // deterministic emission order
			for _, term := range terms {
				emit(term, fmt.Sprintf("%s:%d", docID, counts[term]))
			}
		},
		Reduce: func(term string, postings []string, emit func(k, v string)) {
			sorted := append([]string(nil), postings...)
			sort.Strings(sorted)
			emit(term, strings.Join(sorted, ","))
		},
		Gen: func(rng *rand.Rand, n int) []alm.Record {
			recs := make([]alm.Record, n)
			for i := range recs {
				var b strings.Builder
				for j := 0; j < rng.Intn(8)+4; j++ {
					if j > 0 {
						b.WriteByte(' ')
					}
					b.WriteString(vocabulary[rng.Intn(len(vocabulary))])
				}
				recs[i] = alm.Record{Key: fmt.Sprintf("doc-%06d", rng.Intn(1_000_000)), Value: b.String()}
			}
			return recs
		},
	}
}

func main() {
	spec := alm.JobSpec{
		Workload:   invertedIndex(),
		InputBytes: 20 << 30,
		NumReduces: 8,
		Mode:       alm.ModeALM,
		Seed:       7,
	}
	// Kill the node hosting reducer 3 at 60% of the reduce phase; ALM
	// migrates it with FCM and resumes from the HDFS analytics log.
	plan := alm.StopNodeOfTaskAtReduceProgress(alm.ReduceTask, 3, 0.6)

	res, err := alm.Run(spec, alm.DefaultClusterSpec(), alm.WithFaults(plan))
	if err != nil {
		log.Fatal(err)
	}
	if !res.Completed {
		log.Fatalf("job failed: %s", res.FailReason)
	}

	fmt.Printf("inverted index built in %v despite a node failure\n", res.Duration)
	fmt.Printf("reduce attempt failures: %d (healthy tasks infected: %d)\n",
		res.ReduceAttemptFailures, res.AdditionalReduceFailures)
	fmt.Printf("ALG snapshots: %d, log replays: %d, FCM recoveries supplied %d bytes\n",
		res.Counters["alg.snapshots"],
		res.Counters["alg.restores.local"]+res.Counters["alg.restores.hdfs"]+res.Counters["alg.restores.fcm"],
		res.Counters["fcm.supply.bytes"])

	fmt.Printf("\nsample postings (%d terms total):\n", len(res.Output))
	for i, rec := range res.Output {
		if i >= 8 {
			break
		}
		v := rec.Value
		if len(v) > 60 {
			v = v[:57] + "..."
		}
		fmt.Printf("  %-14s %s\n", rec.Key, v)
	}
}
