// Wordcount-recovery replays the paper's temporal-amplification story
// (Figs. 3 and 10): a node crash mid-reduce under stock YARN makes the
// recovered ReduceTask fail a second time while chasing map output on the
// dead node; SFM proactively regenerates the lost map output and migrates
// the reducer once, with no repeat failure.
//
//	go run ./examples/wordcount-recovery
package main

import (
	"fmt"
	"log"
	"strings"

	"alm"
)

func main() {
	spec := func(mode alm.Mode) alm.JobSpec {
		return alm.JobSpec{
			Workload:   alm.Wordcount(),
			InputBytes: 10 << 30,
			NumReduces: 1, // the paper's single-reducer profiling setup
			Mode:       mode,
			Seed:       11,
		}
	}
	// Stop the network of the node hosting the (only) ReduceTask when the
	// reduce phase reaches 45% — the paper's "node crash" injection.
	plan := func() *alm.FaultPlan {
		return alm.StopNodeOfTaskAtReduceProgress(alm.ReduceTask, 0, 0.45)
	}

	fmt.Println("=== stock YARN (temporal amplification) ===")
	yarn, err := alm.Run(spec(alm.ModeYARN), alm.DefaultClusterSpec(), alm.WithFaults(plan()), alm.WithTrace())
	if err != nil {
		log.Fatal(err)
	}
	report(yarn)

	fmt.Println("\n=== SFM (speculative fast migration) ===")
	sfm, err := alm.Run(spec(alm.ModeSFM), alm.DefaultClusterSpec(), alm.WithFaults(plan()), alm.WithTrace())
	if err != nil {
		log.Fatal(err)
	}
	report(sfm)

	fmt.Printf("\nSFM finished %.1f%% faster and avoided %d repeat ReduceTask failure(s).\n",
		(1-sfm.Duration.Seconds()/yarn.Duration.Seconds())*100,
		yarn.ReduceAttemptFailures-sfm.ReduceAttemptFailures)
}

func report(res alm.Result) {
	fmt.Printf("job time: %v   reduce attempt failures: %d\n", res.Duration, res.ReduceAttemptFailures)
	fmt.Println("key events:")
	for _, e := range res.Trace.Events {
		s := string(e.Kind)
		if strings.Contains(s, "node") || strings.Contains(s, "failed") ||
			strings.Contains(s, "rescheduled") || strings.Contains(s, "fcm") {
			fmt.Printf("  %7.1fs %-22s %-10s %s %s\n", e.At.Seconds(), e.Kind, e.Task, e.Node, e.Detail)
		}
	}
	fmt.Println("reduce progress:")
	last := -1.0
	for _, p := range res.Trace.Series("reduce-progress") {
		if p.Value != last && int(p.At.Seconds())%20 == 0 {
			fmt.Printf("  %7.1fs %5.1f%%\n", p.At.Seconds(), p.Value*100)
			last = p.Value
		}
	}
}
