package alm

import (
	"testing"
	"time"
)

func TestSharedClusterTwoJobs(t *testing.T) {
	sc, err := NewSharedCluster(ClusterSpec{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Submit(JobSpec{
		Name: "wc", Workload: Wordcount(), InputBytes: 2 << 30, NumReduces: 1, Mode: ModeALM, Seed: 5,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Submit(JobSpec{
		Name: "ts", Workload: Terasort(), InputBytes: 4 << 30, NumReduces: 4, Mode: ModeYARN, Seed: 6,
	}, StopNodeOfTaskAtReduceProgress(ReduceTask, 0, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Result(), b.Result()
	if !ra.Completed || !rb.Completed {
		t.Fatalf("jobs: wc=%v/%s ts=%v/%s", ra.Completed, ra.FailReason, rb.Completed, rb.FailReason)
	}
	if rb.ReduceAttemptFailures == 0 {
		t.Fatal("terasort's injected node failure never materialised")
	}
	if !a.Finished() || !b.Finished() {
		t.Fatal("handles should report finished")
	}
	if sc.Now() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestSharedClusterErrors(t *testing.T) {
	sc, err := NewSharedCluster(ClusterSpec{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Run(time.Minute); err == nil {
		t.Fatal("Run with no jobs should error")
	}
	if _, err := sc.Submit(JobSpec{}, nil); err == nil {
		t.Fatal("Submit with no workload should error")
	}
	if _, err := NewSharedCluster(ClusterSpec{Racks: -1}, 1); err == nil {
		t.Fatal("negative topology should error")
	}
}

func TestSharedClusterTimeout(t *testing.T) {
	sc, _ := NewSharedCluster(ClusterSpec{}, 1)
	_, err := sc.Submit(JobSpec{
		Name: "big", Workload: Terasort(), InputBytes: 4 << 30, NumReduces: 2, Mode: ModeYARN, Seed: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Run(5 * time.Second); err == nil {
		t.Fatal("a 5-virtual-second budget cannot finish a 4 GB job; Run should error")
	}
}
