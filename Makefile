# Targets mirror the CI pipeline (.github/workflows/ci.yml): a change
# that passes `make ci` locally passes CI.

GO ?= go
ALMVET := bin/almvet

.PHONY: all build test race vet fix-check lint-test bench bench-alloc bench-compare bench-smoke bench-sweep sweep-race queue-diff chaos chaos-smoke shuffle-smoke tournament-smoke metrics-smoke ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet builds the repo's own vettool and runs the full almvet suite —
# the syntax-level analyzers (detnow, droppederr, hotalloc, locksafe,
# seedflow) and the flow-sensitive ones (maporder, timerflow,
# allocflow) — through `go vet`, which caches verdicts per package
# against the tool binary's content hash.
vet: $(ALMVET)
	$(GO) vet -vettool=$(CURDIR)/$(ALMVET) ./...

# fix-check asserts that `almvet -fix` has nothing left to do: the
# dry-run prints a unified diff of every suggested fix without touching
# the tree and exits non-zero when the diff is non-empty or a
# diagnostic has no fix. A failure means someone committed a finding
# instead of applying `bin/almvet -fix ./...` or annotating it.
fix-check: $(ALMVET)
	./$(ALMVET) -fix -diff ./...

$(ALMVET): FORCE
	$(GO) build -o $(ALMVET) ./cmd/almvet

FORCE:

# lint-test runs only the analyzer fixture suites — fast feedback when
# hacking on internal/lint.
lint-test:
	$(GO) test ./internal/lint/...

# bench runs the engine performance harness — per-figure benchmarks plus
# the event-engine microbenchmarks (timer churn, fetch-session churn,
# heap footprint under the Fig. 4 fault load) — and refreshes the
# checked-in BENCH_engine.json baseline. Compare against `git diff
# BENCH_engine.json` before committing a regression.
bench:
	$(GO) run ./cmd/almbench -perf -perf-out BENCH_engine.json

# bench-alloc is the allocation-budget CI gate: re-measures the harness
# and fails if any benchmark exceeds its budget (budget × (1+tolerance),
# declared in internal/perf and recorded in BENCH_engine.json). Catches
# a reintroduced per-fetch Sprintf or a lost free list, not allocator
# noise.
bench-alloc:
	$(GO) run ./cmd/almbench -perf -perf-out '' -check-budgets

# bench-sweep times the full 1x-scale paper sweep (every experiment) at
# 1 and 8 sweep workers and folds the wall-clock results into
# BENCH_engine.json (entries paper_sweep_1x_workers{1,8}), leaving the
# rest of the baseline untouched. Slow — two full paper-scale sweeps —
# so it is a manual target, not part of `make ci`. Compare runs with
# `make bench-compare OLD=old.json` like any other baseline change.
bench-sweep:
	$(GO) run ./cmd/almbench -perf-sweep -perf-out BENCH_engine.json

# sweep-race runs the sweep scheduler's own suite under the race
# detector: ordered delivery, worker parity, cancellation and panic
# isolation are all concurrency claims, so they get their own racing
# job in CI.
sweep-race:
	$(GO) test -race -count=1 ./internal/sweep

# queue-diff is the event-queue differential gate: drives the timing
# wheel and the binary-heap oracle through fixed-seed randomized scripts
# of mixed Schedule/Stop/Reschedule/Run operations (over a million ops
# total) and asserts bit-identical firing sequences, Stop results and
# queue accounting (DESIGN.md §16).
queue-diff:
	$(GO) test -count=1 -run 'TestQueueDifferential|TestQueueParity' ./internal/sim ./internal/engine

# bench-compare diffs a saved baseline against the checked-in
# BENCH_engine.json: per-benchmark ns/op, B/op and allocs/op deltas.
# Usage: make bench-compare OLD=old.json
bench-compare:
	$(GO) run ./cmd/almbench -compare $(OLD)

# bench-smoke compiles and runs every benchmark exactly once — the CI
# guard that keeps the harness from bit-rotting without paying full
# measurement cost.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/sim ./internal/fairshare ./internal/perf

# chaos sweeps 50 seeded random gray-failure schedules under all four
# modes and asserts the recovery invariants (DESIGN.md §11). A failing
# seed prints a one-line reproducer.
chaos:
	$(GO) run ./cmd/almrun -chaos -seeds 50

# chaos-smoke is the CI-sized batch: a fixed handful of seeds under the
# race detector.
chaos-smoke:
	$(GO) run -race ./cmd/almrun -chaos -seed 11 -seeds 8

# shuffle-smoke sweeps a fixed seed batch of the remote-shuffle chaos
# matrix ({yarn,alm} with the tier enabled, tier faults in the draw) and
# diffs the deterministic sweep transcript against the checked-in
# golden. Catches both invariant violations and any drift in the seeded
# tier fault schedules.
shuffle-smoke:
	@mkdir -p bin
	$(GO) run ./cmd/almrun -chaos -shuffle=remote -seed 11 -seeds 4 > bin/shuffle-chaos.txt
	diff -u internal/shuffletier/testdata/shuffle-chaos-11-4.golden bin/shuffle-chaos.txt

# tournament-smoke races every registered recovery policy head-to-head
# over a small seeded chaos batch (3 fault classes, one seed that hits
# the speculation constraints so regret/backup columns are non-zero) and
# diffs the deterministic league table against the checked-in golden.
# The same golden is pinned by internal/tournament's TestLeagueGolden;
# regenerate both with:
#   go test ./internal/tournament -run TestLeagueGolden -update-league
tournament-smoke:
	@mkdir -p bin
	$(GO) run ./cmd/almrun -tournament -seed 28 -seeds 6 > bin/tournament-league.txt
	diff -u internal/tournament/testdata/league-28-6.golden bin/tournament-league.txt

# metrics-smoke runs the paper's Fig. 4 scenario (Terasort, MOF-node
# failure at 55% job progress, stock YARN) at 1/8 scale twice and
# asserts the snapshots are byte-identical. almrun validates the
# Prometheus text through internal/metrics/lint before writing.
metrics-smoke:
	$(GO) run ./cmd/almrun -workload terasort -size-gb 12.5 -reduces 20 -mode yarn -fail mof-node -at 0.55 -metrics bin/metrics-a.prom
	$(GO) run ./cmd/almrun -workload terasort -size-gb 12.5 -reduces 20 -mode yarn -fail mof-node -at 0.55 -metrics bin/metrics-b.prom
	cmp bin/metrics-a.prom bin/metrics-b.prom

ci: build test race vet fix-check bench-smoke bench-alloc sweep-race queue-diff chaos-smoke shuffle-smoke tournament-smoke metrics-smoke

clean:
	rm -rf bin
	$(GO) clean ./...
