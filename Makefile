# Targets mirror the CI pipeline (.github/workflows/ci.yml): a change
# that passes `make ci` locally passes CI.

GO ?= go
ALMVET := bin/almvet

.PHONY: all build test race vet lint-test ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet builds the repo's own vettool and runs the almvet suite (detnow,
# droppederr, locksafe, seedflow) through `go vet`, which caches verdicts
# per package against the tool binary's content hash.
vet: $(ALMVET)
	$(GO) vet -vettool=$(CURDIR)/$(ALMVET) ./...

$(ALMVET): FORCE
	$(GO) build -o $(ALMVET) ./cmd/almvet

FORCE:

# lint-test runs only the analyzer fixture suites — fast feedback when
# hacking on internal/lint.
lint-test:
	$(GO) test ./internal/lint/...

ci: build test race vet

clean:
	rm -rf bin
	$(GO) clean ./...
