package alm

import (
	"context"
	"fmt"

	"alm/internal/engine"
	"alm/internal/sweep"
)

// ErrCanceled is returned by Run and Sweep (wrapping the context's
// error) when a WithContext / Sweep context is canceled before the work
// finishes. Test with errors.Is(err, alm.ErrCanceled).
var ErrCanceled = engine.ErrCanceled

// WithContext bounds a Run by ctx: the simulation's event loop polls it
// at event boundaries, and Run returns ctx.Err() wrapped in ErrCanceled
// once it is canceled.
func WithContext(ctx context.Context) RunOption { return engine.WithContext(ctx) }

// SweepUnit is one job of a sweep: a spec, the cluster to run it on,
// and the unit's run options (the same options Run accepts).
type SweepUnit struct {
	Spec    JobSpec
	Cluster ClusterSpec
	Opts    []RunOption
}

// SweepResult is one unit's outcome. Unit is the index into the sweep's
// unit slice; Err carries the unit's failure (a run error, a recovered
// panic, or ErrCanceled for units the cancellation prevented from
// starting).
type SweepResult struct {
	Unit   int
	Result Result
	Err    error
}

// SweepOptions collects everything optional about a sweep; build it
// with SweepWorkers and SweepProgress.
type SweepOptions struct {
	workers  int
	progress func(SweepResult)
}

// SweepOption configures a Sweep call.
type SweepOption func(*SweepOptions)

// SweepWorkers bounds the worker pool (one engine per worker at a
// time). Zero or negative means runtime.NumCPU(). The worker count
// changes only wall-clock time: results, progress order and every
// exported artifact are byte-identical at any setting.
func SweepWorkers(n int) SweepOption {
	return func(o *SweepOptions) { o.workers = n }
}

// SweepProgress streams each unit's outcome as the sweep advances.
// Like Observer callbacks, delivery is deterministic: fn runs on the
// calling goroutine in strict unit order — unit i is reported only
// after units 0..i-1 — regardless of which worker finished first.
func SweepProgress(fn func(SweepResult)) SweepOption {
	return func(o *SweepOptions) { o.progress = fn }
}

// Sweep runs the units on a parallel worker pool, one fresh simulated
// cluster per unit, and returns the results in unit order. Determinism
// contract: each unit's Result is identical to what Run would produce
// for it, and the result slice, progress callbacks and first-error
// selection do not depend on the worker count.
//
// A unit failure (including a panicked unit, isolated to that unit) is
// reported in its SweepResult.Err and does not stop the sweep. Cancel
// ctx to stop early: in-flight units abort at their next event-loop
// boundary, never-started units get ErrCanceled, and Sweep returns
// ctx.Err() wrapped in ErrCanceled alongside the deterministic prefix
// of completed results.
func Sweep(ctx context.Context, units []SweepUnit, opts ...SweepOption) ([]SweepResult, error) {
	var o SweepOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]SweepResult, len(units))
	ran := make([]bool, len(units))
	sweep.Do(ctx, len(units), o.workers, func(i int) error {
		u := units[i]
		runOpts := make([]RunOption, 0, len(u.Opts)+2)
		runOpts = append(runOpts, engine.WithoutTrace())
		runOpts = append(runOpts, u.Opts...)
		runOpts = append(runOpts, engine.WithContext(ctx))
		res, err := engine.Run(u.Spec, u.Cluster, runOpts...)
		out[i] = SweepResult{Unit: i, Result: res, Err: err}
		return err
	}, func(i int, err error) {
		ran[i] = true
		if err != nil && out[i].Err == nil {
			out[i].Err = err // a recovered panic: the slot never got a run error
		}
		if o.progress != nil {
			o.progress(out[i])
		}
	})
	if err := ctx.Err(); err != nil {
		werr := fmt.Errorf("%w: %w", ErrCanceled, err)
		for i := range out {
			if !ran[i] {
				out[i] = SweepResult{Unit: i, Err: werr}
			}
		}
		return out, werr
	}
	return out, nil
}
