package alm_test

import (
	"fmt"

	"alm"
)

// ExampleRun executes a small Wordcount job with the full ALM framework
// on the simulated paper testbed.
func ExampleRun() {
	spec := alm.JobSpec{
		Workload:   alm.Wordcount(),
		InputBytes: 1 << 30,
		NumReduces: 1,
		Mode:       alm.ModeALM,
		Seed:       7,
	}
	res, err := alm.Run(spec, alm.DefaultClusterSpec())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed:", res.Completed)
	fmt.Println("words counted:", len(res.Output))
	// Output:
	// completed: true
	// words counted: 34
}

// ExampleRun_faultInjection injects the paper's node failure and shows
// that SFM recovers without infecting healthy tasks.
func ExampleRun_faultInjection() {
	spec := alm.JobSpec{
		Workload:   alm.Wordcount(),
		InputBytes: 2 << 30,
		NumReduces: 1,
		Mode:       alm.ModeSFM,
		Seed:       7,
	}
	plan := alm.StopNodeOfTaskAtReduceProgress(alm.ReduceTask, 0, 0.5)
	res, err := alm.Run(spec, alm.DefaultClusterSpec(), alm.WithFaults(plan))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed:", res.Completed)
	fmt.Println("healthy tasks infected:", res.AdditionalReduceFailures)
	// Output:
	// completed: true
	// healthy tasks infected: 0
}

// ExampleRunExperiment regenerates one paper artifact at reduced scale.
func ExampleRunExperiment() {
	tbl, err := alm.RunExperiment("fig15", alm.ExperimentOptions{Scale: 1.0 / 16})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("id:", tbl.ID)
	fmt.Println("rows:", len(tbl.Rows))
	// Output:
	// id: fig15
	// rows: 3
}
