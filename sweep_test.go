package alm

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

func sweepUnits(n int, opts ...RunOption) []SweepUnit {
	units := make([]SweepUnit, n)
	for i := range units {
		units[i] = SweepUnit{
			Spec: JobSpec{
				Workload:   Terasort(),
				InputBytes: 1 << 30,
				NumReduces: 2,
				Mode:       ModeSFM,
				Seed:       int64(11 + i),
			},
			Cluster: DefaultClusterSpec(),
			Opts:    opts,
		}
	}
	return units
}

// TestSweepWorkerParity pins the API's determinism contract: the result
// slice, the progress order and every per-unit artifact (down to the
// metrics exports) are byte-identical at 1 and 8 workers.
func TestSweepWorkerParity(t *testing.T) {
	run := func(workers int) ([]SweepResult, []int) {
		var order []int
		out, err := Sweep(context.Background(), sweepUnits(6, WithMetrics()),
			SweepWorkers(workers),
			SweepProgress(func(r SweepResult) { order = append(order, r.Unit) }))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out, order
	}
	serial, order1 := run(1)
	parallel, order8 := run(8)
	for i, got := range [][]int{order1, order8} {
		for j, u := range got {
			if u != j {
				t.Fatalf("progress stream %d delivered unit %d at position %d", i, u, j)
			}
		}
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("unit %d failed: serial=%v parallel=%v", i, s.Err, p.Err)
		}
		if !s.Result.Completed || !p.Result.Completed {
			t.Fatalf("unit %d did not complete", i)
		}
		if s.Result.Duration != p.Result.Duration {
			t.Errorf("unit %d durations differ: %v vs %v", i, s.Result.Duration, p.Result.Duration)
		}
		if s.Result.Events.Processed != p.Result.Events.Processed {
			t.Errorf("unit %d event counts differ: %d vs %d", i, s.Result.Events.Processed, p.Result.Events.Processed)
		}
		if s.Result.Metrics == nil || p.Result.Metrics == nil {
			t.Fatalf("unit %d missing metrics snapshot", i)
		}
		if !bytes.Equal(s.Result.Metrics.Prometheus(), p.Result.Metrics.Prometheus()) {
			t.Errorf("unit %d metrics exports differ between 1 and 8 workers", i)
		}
	}
}

// TestSweepCancellation cancels mid-sweep and requires a prompt return
// with a deterministic partial prefix: completed units carry the same
// result a standalone Run produces, never-started units carry
// ErrCanceled, and the call itself reports ErrCanceled.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	units := sweepUnits(32)
	out, err := Sweep(ctx, units, SweepWorkers(2),
		SweepProgress(func(SweepResult) { cancel() }))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Sweep returned %v, want ErrCanceled", err)
	}
	if len(out) != len(units) {
		t.Fatalf("got %d results for %d units", len(out), len(units))
	}
	completed, canceled := 0, 0
	for i, r := range out {
		if r.Unit != i {
			t.Fatalf("result %d labeled unit %d", i, r.Unit)
		}
		switch {
		case r.Err == nil:
			completed++
			if !r.Result.Completed {
				t.Errorf("unit %d delivered without error but job incomplete: %s", i, r.Result.FailReason)
			}
			// The partial prefix must be deterministic: identical to a
			// standalone serial run of the same unit.
			ref, err := Run(units[i].Spec, units[i].Cluster)
			if err != nil {
				t.Fatal(err)
			}
			if r.Result.Duration != ref.Duration || r.Result.Events.Processed != ref.Events.Processed {
				t.Errorf("unit %d result differs from a standalone run", i)
			}
		case errors.Is(r.Err, ErrCanceled):
			canceled++
		default:
			t.Errorf("unit %d: unexpected error %v", i, r.Err)
		}
	}
	if completed == 0 {
		t.Error("cancellation arrived before any unit completed; progress callback never fired")
	}
	if canceled == 0 {
		t.Error("no unit was canceled; the sweep ran to completion despite cancel")
	}
}

// TestRunWithContextCanceled pins the Run-level satellite: a canceled
// WithContext context stops the event loop at a poll boundary and
// surfaces as ErrCanceled.
func TestRunWithContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(JobSpec{
		Workload:   Terasort(),
		InputBytes: 1 << 30,
		NumReduces: 2,
		Mode:       ModeSFM,
		Seed:       11,
	}, DefaultClusterSpec(), WithContext(ctx))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run returned %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error %v does not wrap context.Canceled", err)
	}
}
