// Command almbench regenerates the paper's evaluation: every figure and
// table from Section V of "Cracking Down MapReduce Failure Amplification
// through Analytics Logging and Migration" (IPPS 2015), plus the
// design-choice ablations.
//
// Usage:
//
//	almbench                  # run everything at paper scale
//	almbench -exp fig8,fig9   # run selected experiments
//	almbench -scale 0.125     # 1/8-size datasets for a quick pass
//	almbench -list            # list experiment IDs
//	almbench -perf            # run the engine performance harness,
//	                          # writing BENCH_engine.json
//	almbench -perf -check-budgets
//	                          # the `make bench-alloc` CI gate: fail if
//	                          # any benchmark exceeds its allocation
//	                          # budget (budget × (1 + tolerance))
//	almbench -compare old.json [new.json]
//	                          # per-benchmark ns/op, B/op, allocs/op
//	                          # deltas between two BENCH_engine.json
//	                          # files (new defaults to the -perf-out
//	                          # path, i.e. the checked-in baseline)
//	almbench -metrics-dir m/  # dump one Prometheus-text metrics file
//	                          # per simulated case under m/
//	almbench -queue heap      # select the sim event-queue backend
//	                          # (wheel | heap); output is byte-identical
//	                          # either way, so combined with -perf this
//	                          # A/Bs the backends' performance
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"alm"
	"alm/internal/perf"
	"alm/internal/sim"
	"alm/internal/sweep"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = paper sizes)")
		seed     = flag.Int64("seed", 11, "simulation seed")
		listFlag = flag.Bool("list", false, "list experiment IDs and exit")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel sweep engines (tables are byte-identical at any worker count)")
		format   = flag.String("format", "text", "output format: text | json | csv")
		perfFlag = flag.Bool("perf", false, "run the engine performance harness instead of experiments")
		perfSwp  = flag.Bool("perf-sweep", false, "time the full paper sweep at 1 and 8 workers and fold the wall-clock results into -perf-out")
		perfOut  = flag.String("perf-out", "BENCH_engine.json", "output path for -perf results ('-' for stdout, '' to skip writing)")
		budgets  = flag.Bool("check-budgets", false, "with -perf: verify results against their allocation budgets and exit 1 on any breach")
		compare  = flag.String("compare", "", "old BENCH_engine.json to diff against; the new file is the first positional argument (default: the -perf-out path)")
		metrDir  = flag.String("metrics-dir", "", "directory to dump one Prometheus-text metrics file per simulated case")
		queue    = flag.String("queue", "", "sim event-queue backend: wheel | heap (default: the wheel); both are byte-identical, so this is an A/B performance knob")
	)
	flag.Parse()

	if *queue != "" {
		k, ok := sim.ParseQueueKind(*queue)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown -queue %q (want wheel or heap)\n", *queue)
			os.Exit(1)
		}
		sim.SetDefaultQueue(k)
	}

	if *compare != "" {
		newPath := *perfOut
		if flag.NArg() > 0 {
			newPath = flag.Arg(0)
		}
		oldRes, err := readBenchFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(1)
		}
		newRes, err := readBenchFile(newPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# %s -> %s\n", *compare, newPath)
		perf.WriteComparison(os.Stdout, oldRes, newRes)
		return
	}

	if *perfFlag {
		results := perf.RunAll(os.Stderr)
		if *perfOut != "" {
			out := os.Stdout
			if *perfOut != "-" {
				f, err := os.Create(*perfOut)
				if err != nil {
					fmt.Fprintf(os.Stderr, "perf: %v\n", err)
					os.Exit(1)
				}
				defer f.Close()
				out = f
			}
			if err := perf.WriteJSON(out, results); err != nil {
				fmt.Fprintf(os.Stderr, "perf: %v\n", err)
				os.Exit(1)
			}
			if *perfOut != "-" {
				fmt.Printf("wrote %d benchmark results to %s\n", len(results), *perfOut)
			}
		}
		if *budgets {
			if violations := perf.CheckBudgets(results); len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "budget breach: %s\n", v)
				}
				os.Exit(1)
			}
			fmt.Println("all benchmarks within allocation budget")
		}
		return
	}

	if *perfSwp {
		if err := runPerfSweep(*scale, *seed, *perfOut); err != nil {
			fmt.Fprintf(os.Stderr, "perf-sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *listFlag {
		for _, id := range alm.ExperimentIDs() {
			fmt.Printf("%-10s %s\n", id, alm.ExperimentDescription(id))
		}
		return
	}

	ids := alm.ExperimentIDs()
	if *expFlag != "" {
		ids = strings.Split(*expFlag, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	opt := alm.ExperimentOptions{Scale: *scale, Seed: *seed, Workers: *workers}

	// sinkFailed counts metrics-file write errors; the sink runs on
	// whichever worker finishes the owning experiment, so the counter is
	// atomic. Each case key maps to a distinct file, so concurrent
	// writes never collide.
	var sinkFailed atomic.Int32
	if *metrDir != "" {
		if err := os.MkdirAll(*metrDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-dir: %v\n", err)
			os.Exit(1)
		}
		opt.MetricsSink = func(caseKey string, snap *alm.MetricsSnapshot) {
			if snap == nil {
				return
			}
			name := strings.ReplaceAll(caseKey, "/", "__") + ".prom"
			path := filepath.Join(*metrDir, name)
			if err := os.WriteFile(path, snap.Prometheus(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "metrics %s: %v\n", caseKey, err)
				sinkFailed.Add(1)
			}
		}
	}

	// The full sweep fans experiments over the shared scheduler: each
	// unit renders its table off to the side, delivery prints in ID
	// order, so stdout matches the historical serial loop at any worker
	// count.
	failed := 0
	outs := make([]struct {
		text string
		err  error
	}, len(ids))
	sweep.Do(context.Background(), len(ids), *workers, func(i int) error {
		id := ids[i]
		start := time.Now() //almvet:allow detnow -- wall-clock runtime of the experiment binary itself, not simulated time
		tbl, err := alm.RunExperiment(id, opt)
		if err != nil {
			outs[i].err = fmt.Errorf("experiment %s failed: %v", id, err)
			return nil
		}
		switch *format {
		case "json":
			data, err := json.MarshalIndent(tbl, "", "  ")
			if err != nil {
				outs[i].err = fmt.Errorf("experiment %s: %v", id, err)
				return nil
			}
			outs[i].text = string(data) + "\n"
		case "csv":
			outs[i].text = fmt.Sprintf("# %s: %s\n%s\n", tbl.ID, tbl.Title, tbl.RenderCSV())
		default:
			outs[i].text = tbl.Render() +
				fmt.Sprintf("(%s computed in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		return nil
	}, func(i int, err error) {
		if err != nil && outs[i].err == nil {
			outs[i].err = err
		}
		if outs[i].err != nil {
			fmt.Fprintln(os.Stderr, outs[i].err)
			failed++
			return
		}
		fmt.Print(outs[i].text)
	})
	if failed+int(sinkFailed.Load()) > 0 {
		os.Exit(1)
	}
}

// runPerfSweep times the full paper sweep (every experiment ID) at 1 and
// 8 workers and folds the wall-clock results into the BENCH_engine.json
// at outPath, keeping every other benchmark entry intact. The sweep
// output is byte-identical at both worker counts, so the two entries
// measure scheduling overhead and parallel speedup only; the speedup
// recorded is bounded by the machine's core count.
func runPerfSweep(scale float64, seed int64, outPath string) error {
	if outPath == "" || outPath == "-" {
		return fmt.Errorf("needs a writable -perf-out path")
	}
	ids := alm.ExperimentIDs()
	scaleTag := strconv.FormatFloat(scale, 'g', -1, 64)
	var results []perf.Result
	for _, w := range []int{1, 8} {
		opt := alm.ExperimentOptions{Scale: scale, Seed: seed, Workers: w}
		start := time.Now() //almvet:allow detnow -- wall-clock measurement is the whole point here
		for _, id := range ids {
			expStart := time.Now() //almvet:allow detnow -- progress reporting
			if _, err := alm.RunExperiment(id, opt); err != nil {
				return fmt.Errorf("experiment %s at %d workers: %v", id, w, err)
			}
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			fmt.Fprintf(os.Stderr, "  %-10s %8v  heap %5.1f GiB (sys %5.1f GiB)\n",
				id, time.Since(expStart).Round(time.Millisecond),
				float64(ms.HeapAlloc)/(1<<30), float64(ms.HeapSys)/(1<<30))
		}
		elapsed := time.Since(start)
		name := fmt.Sprintf("paper_sweep_%sx_workers%d", scaleTag, w)
		fmt.Fprintf(os.Stderr, "%-32s %14.0f ns/op  (%v wall)\n", name, float64(elapsed.Nanoseconds()), elapsed.Round(time.Millisecond))
		results = append(results, perf.Result{
			Name:       name,
			Desc:       fmt.Sprintf("full paper sweep (%d experiments) at %sx scale, %d sweep workers, wall clock", len(ids), scaleTag, w),
			Iterations: 1,
			NsPerOp:    float64(elapsed.Nanoseconds()),
		})
	}
	base, err := readBenchFile(outPath)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	merged := perf.MergeResults(base, results)
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := perf.WriteJSON(f, merged); err != nil {
		return err
	}
	fmt.Printf("folded %d sweep results into %s (%d total)\n", len(results), outPath, len(merged))
	return nil
}

// readBenchFile loads one BENCH_engine.json document's results.
func readBenchFile(path string) ([]perf.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc, err := perf.ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc.Results, nil
}
