// Command almbench regenerates the paper's evaluation: every figure and
// table from Section V of "Cracking Down MapReduce Failure Amplification
// through Analytics Logging and Migration" (IPPS 2015), plus the
// design-choice ablations.
//
// Usage:
//
//	almbench                  # run everything at paper scale
//	almbench -exp fig8,fig9   # run selected experiments
//	almbench -scale 0.125     # 1/8-size datasets for a quick pass
//	almbench -list            # list experiment IDs
//	almbench -perf            # run the engine performance harness,
//	                          # writing BENCH_engine.json
//	almbench -metrics-dir m/  # dump one Prometheus-text metrics file
//	                          # per simulated case under m/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"alm"
	"alm/internal/perf"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = paper sizes)")
		seed     = flag.Int64("seed", 11, "simulation seed")
		listFlag = flag.Bool("list", false, "list experiment IDs and exit")
		workers  = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		format   = flag.String("format", "text", "output format: text | json | csv")
		perfFlag = flag.Bool("perf", false, "run the engine performance harness instead of experiments")
		perfOut  = flag.String("perf-out", "BENCH_engine.json", "output path for -perf results ('-' for stdout)")
		metrDir  = flag.String("metrics-dir", "", "directory to dump one Prometheus-text metrics file per simulated case")
	)
	flag.Parse()

	if *perfFlag {
		results := perf.RunAll(os.Stderr)
		out := os.Stdout
		if *perfOut != "-" {
			f, err := os.Create(*perfOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "perf: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := perf.WriteJSON(out, results); err != nil {
			fmt.Fprintf(os.Stderr, "perf: %v\n", err)
			os.Exit(1)
		}
		if *perfOut != "-" {
			fmt.Printf("wrote %d benchmark results to %s\n", len(results), *perfOut)
		}
		return
	}

	if *listFlag {
		for _, id := range alm.ExperimentIDs() {
			fmt.Printf("%-10s %s\n", id, alm.ExperimentDescription(id))
		}
		return
	}

	ids := alm.ExperimentIDs()
	if *expFlag != "" {
		ids = strings.Split(*expFlag, ",")
	}
	opt := alm.ExperimentOptions{Scale: *scale, Seed: *seed, Workers: *workers}

	failed := 0
	if *metrDir != "" {
		if err := os.MkdirAll(*metrDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-dir: %v\n", err)
			os.Exit(1)
		}
		opt.MetricsSink = func(caseKey string, snap *alm.MetricsSnapshot) {
			if snap == nil {
				return
			}
			name := strings.ReplaceAll(caseKey, "/", "__") + ".prom"
			path := filepath.Join(*metrDir, name)
			if err := os.WriteFile(path, snap.Prometheus(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "metrics %s: %v\n", caseKey, err)
				failed++
			}
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now() //almvet:allow detnow -- wall-clock runtime of the experiment binary itself, not simulated time
		tbl, err := alm.RunExperiment(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		switch *format {
		case "json":
			data, err := json.MarshalIndent(tbl, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
				failed++
				continue
			}
			fmt.Println(string(data))
		case "csv":
			fmt.Printf("# %s: %s\n%s\n", tbl.ID, tbl.Title, tbl.RenderCSV())
		default:
			fmt.Print(tbl.Render())
			fmt.Printf("(%s computed in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
