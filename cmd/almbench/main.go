// Command almbench regenerates the paper's evaluation: every figure and
// table from Section V of "Cracking Down MapReduce Failure Amplification
// through Analytics Logging and Migration" (IPPS 2015), plus the
// design-choice ablations.
//
// Usage:
//
//	almbench                  # run everything at paper scale
//	almbench -exp fig8,fig9   # run selected experiments
//	almbench -scale 0.125     # 1/8-size datasets for a quick pass
//	almbench -list            # list experiment IDs
//	almbench -perf            # run the engine performance harness,
//	                          # writing BENCH_engine.json
//	almbench -perf -check-budgets
//	                          # the `make bench-alloc` CI gate: fail if
//	                          # any benchmark exceeds its allocation
//	                          # budget (budget × (1 + tolerance))
//	almbench -compare old.json [new.json]
//	                          # per-benchmark ns/op, B/op, allocs/op
//	                          # deltas between two BENCH_engine.json
//	                          # files (new defaults to the -perf-out
//	                          # path, i.e. the checked-in baseline)
//	almbench -metrics-dir m/  # dump one Prometheus-text metrics file
//	                          # per simulated case under m/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"alm"
	"alm/internal/perf"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = paper sizes)")
		seed     = flag.Int64("seed", 11, "simulation seed")
		listFlag = flag.Bool("list", false, "list experiment IDs and exit")
		workers  = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		format   = flag.String("format", "text", "output format: text | json | csv")
		perfFlag = flag.Bool("perf", false, "run the engine performance harness instead of experiments")
		perfOut  = flag.String("perf-out", "BENCH_engine.json", "output path for -perf results ('-' for stdout, '' to skip writing)")
		budgets  = flag.Bool("check-budgets", false, "with -perf: verify results against their allocation budgets and exit 1 on any breach")
		compare  = flag.String("compare", "", "old BENCH_engine.json to diff against; the new file is the first positional argument (default: the -perf-out path)")
		metrDir  = flag.String("metrics-dir", "", "directory to dump one Prometheus-text metrics file per simulated case")
	)
	flag.Parse()

	if *compare != "" {
		newPath := *perfOut
		if flag.NArg() > 0 {
			newPath = flag.Arg(0)
		}
		oldRes, err := readBenchFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(1)
		}
		newRes, err := readBenchFile(newPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# %s -> %s\n", *compare, newPath)
		perf.WriteComparison(os.Stdout, oldRes, newRes)
		return
	}

	if *perfFlag {
		results := perf.RunAll(os.Stderr)
		if *perfOut != "" {
			out := os.Stdout
			if *perfOut != "-" {
				f, err := os.Create(*perfOut)
				if err != nil {
					fmt.Fprintf(os.Stderr, "perf: %v\n", err)
					os.Exit(1)
				}
				defer f.Close()
				out = f
			}
			if err := perf.WriteJSON(out, results); err != nil {
				fmt.Fprintf(os.Stderr, "perf: %v\n", err)
				os.Exit(1)
			}
			if *perfOut != "-" {
				fmt.Printf("wrote %d benchmark results to %s\n", len(results), *perfOut)
			}
		}
		if *budgets {
			if violations := perf.CheckBudgets(results); len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "budget breach: %s\n", v)
				}
				os.Exit(1)
			}
			fmt.Println("all benchmarks within allocation budget")
		}
		return
	}

	if *listFlag {
		for _, id := range alm.ExperimentIDs() {
			fmt.Printf("%-10s %s\n", id, alm.ExperimentDescription(id))
		}
		return
	}

	ids := alm.ExperimentIDs()
	if *expFlag != "" {
		ids = strings.Split(*expFlag, ",")
	}
	opt := alm.ExperimentOptions{Scale: *scale, Seed: *seed, Workers: *workers}

	failed := 0
	if *metrDir != "" {
		if err := os.MkdirAll(*metrDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-dir: %v\n", err)
			os.Exit(1)
		}
		opt.MetricsSink = func(caseKey string, snap *alm.MetricsSnapshot) {
			if snap == nil {
				return
			}
			name := strings.ReplaceAll(caseKey, "/", "__") + ".prom"
			path := filepath.Join(*metrDir, name)
			if err := os.WriteFile(path, snap.Prometheus(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "metrics %s: %v\n", caseKey, err)
				failed++
			}
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now() //almvet:allow detnow -- wall-clock runtime of the experiment binary itself, not simulated time
		tbl, err := alm.RunExperiment(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		switch *format {
		case "json":
			data, err := json.MarshalIndent(tbl, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
				failed++
				continue
			}
			fmt.Println(string(data))
		case "csv":
			fmt.Printf("# %s: %s\n%s\n", tbl.ID, tbl.Title, tbl.RenderCSV())
		default:
			fmt.Print(tbl.Render())
			fmt.Printf("(%s computed in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// readBenchFile loads one BENCH_engine.json document's results.
func readBenchFile(path string) ([]perf.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc, err := perf.ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc.Results, nil
}
