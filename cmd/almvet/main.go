// Command almvet is the repo's vet tool: the analyzer suite (detnow,
// droppederr, hotalloc, locksafe, seedflow, and the flow-sensitive
// maporder, timerflow, allocflow) that enforces the simulator's
// determinism contract, the ALG no-silent-log-loss rule, lock
// discipline, and hot-path allocation budgets. See DESIGN.md "Static
// analysis gates".
//
// Two modes:
//
//	go vet -vettool=$(pwd)/bin/almvet ./...   # driven by cmd/go (CI mode)
//	almvet ./...                              # standalone, no go tool needed
//
// Under cmd/go, almvet speaks the vettool protocol (-V=full handshake,
// -flags JSON, then one vet.cfg per package unit); standalone mode loads
// and type-checks packages itself through internal/lint/loader, printing
// diagnostics in a byte-stable global order (file, line, column,
// analyzer).
//
// Analyzer selection mirrors vet: `almvet -detnow ./...` runs only
// detnow; `almvet -detnow=false ./...` runs everything else.
//
// Standalone mode can also apply the analyzers' suggested fixes:
//
//	almvet -fix ./...        # rewrite files in place (gofmt-clean)
//	almvet -fix -diff ./...  # dry run: print a unified diff, write nothing
//
// -fix -diff exits 2 when the diff is non-empty, so CI can assert that
// the tree has no outstanding machine-applicable fixes.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"alm/internal/lint/analysis"
	"alm/internal/lint/driver"
	"alm/internal/lint/fixer"
	"alm/internal/lint/loader"
	"alm/internal/lint/registry"
	"alm/internal/lint/unitchecker"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("almvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	vFlag := fs.String("V", "", "print version and exit (cmd/go handshake)")
	flagsFlag := fs.Bool("flags", false, "print JSON flag descriptions and exit (cmd/go handshake)")
	jsonFlag := fs.Bool("json", false, "accepted for vet compatibility (ignored)")
	_ = jsonFlag
	fixFlag := fs.Bool("fix", false, "apply suggested fixes (standalone mode only)")
	diffFlag := fs.Bool("diff", false, "with -fix, print a unified diff instead of writing files")
	analyzerFlags := make(map[string]*bool)
	for _, s := range registry.All() {
		analyzerFlags[s.Name] = fs.Bool(s.Name, false, "enable only the listed analyzers: "+firstLine(s.Doc))
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *vFlag != "" {
		// cmd/go folds this whole line into the build-cache key for vet
		// results, so it must change whenever the tool's behavior can:
		// hash the binary itself. (A literal like "devel" is rejected.)
		fmt.Fprintf(stdout, "almvet version almvet-%s\n", selfHash())
		return 0
	}
	if *flagsFlag {
		type jsonFlagDesc struct {
			Name  string
			Bool  bool
			Usage string
		}
		var descs []jsonFlagDesc
		for _, s := range registry.All() {
			descs = append(descs, jsonFlagDesc{Name: s.Name, Bool: true, Usage: firstLine(s.Doc)})
		}
		data, err := json.MarshalIndent(descs, "", "\t")
		if err != nil {
			fmt.Fprintf(stderr, "almvet: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "%s\n", data)
		return 0
	}

	enable := selection(fs, analyzerFlags)

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		if *fixFlag || *diffFlag {
			fmt.Fprintln(stderr, "almvet: -fix/-diff are standalone-mode flags; run almvet directly, not through go vet")
			return 2
		}
		return unitchecker.Main(rest[0], enable, stderr)
	}
	if *diffFlag && !*fixFlag {
		fmt.Fprintln(stderr, "almvet: -diff requires -fix")
		return 2
	}
	return standalone(rest, enable, fixMode{apply: *fixFlag, diff: *diffFlag}, stdout, stderr)
}

// selection turns the explicitly-set analyzer flags into an enable set,
// with vet's semantics: naming any analyzer runs only those named true;
// naming only =false exclusions runs everything else; nil means all.
func selection(fs *flag.FlagSet, analyzerFlags map[string]*bool) map[string]bool {
	explicit := make(map[string]bool)
	anyTrue := false
	fs.Visit(func(f *flag.Flag) {
		if v, ok := analyzerFlags[f.Name]; ok {
			explicit[f.Name] = *v
			if *v {
				anyTrue = true
			}
		}
	})
	if len(explicit) == 0 {
		return nil
	}
	enable := make(map[string]bool)
	for _, s := range registry.All() {
		if anyTrue {
			enable[s.Name] = explicit[s.Name]
		} else {
			v, set := explicit[s.Name]
			enable[s.Name] = !set || v
		}
	}
	return enable
}

// fixMode selects what standalone does with suggested fixes: nothing,
// rewrite files in place, or print a dry-run unified diff.
type fixMode struct {
	apply bool
	diff  bool
}

// standalone loads package patterns itself and runs the scoped suite —
// `almvet ./...` with no go-tool driver, handy for editors and quick
// runs. Diagnostics from every package are collected first and emitted
// in one byte-stable global order — (file, line, column, analyzer) —
// so runs over different pattern spellings of the same package set
// produce identical output.
func standalone(patterns []string, enable map[string]bool, mode fixMode, stdout, stderr io.Writer) int {
	l, err := loader.New(".")
	if err != nil {
		fmt.Fprintf(stderr, "almvet: %v\n", err)
		return 1
	}
	paths, err := expandPatterns(l, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "almvet: %v\n", err)
		return 1
	}
	exit := 0
	var all []analysis.Diagnostic
	for _, path := range paths {
		var analyzers []*analysis.Analyzer
		for _, s := range registry.All() {
			if enable != nil && !enable[s.Name] {
				continue
			}
			if s.AppliesTo(path) {
				analyzers = append(analyzers, s.Analyzer)
			}
		}
		if len(analyzers) == 0 {
			continue
		}
		pkg, err := l.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "almvet: %v\n", err)
			exit = 1
			continue
		}
		if len(pkg.TypeErrors) > 0 {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "almvet: %s: %v\n", path, e)
			}
			exit = 1
			continue
		}
		diags, err := driver.Run(driver.Target{Fset: l.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info},
			analyzers, driver.Options{})
		if err != nil {
			fmt.Fprintf(stderr, "almvet: %v\n", err)
			exit = 1
			continue
		}
		all = append(all, diags...)
	}

	sort.SliceStable(all, func(i, j int) bool {
		pi, pj := l.Fset.Position(all[i].Pos), l.Fset.Position(all[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return all[i].Category < all[j].Category
	})

	if !mode.apply {
		for _, d := range all {
			fmt.Fprintf(stderr, "%s\n", driver.Format(l.Fset, d))
		}
		if len(all) > 0 && exit == 0 {
			exit = 2
		}
		return exit
	}
	return applyFixes(l, all, mode, stdout, stderr, exit)
}

// applyFixes rewrites (or, in diff mode, previews) the suggested fixes
// for the collected diagnostics. Diagnostics without an applied fix are
// still printed: -fix resolves what it can and reports the rest.
func applyFixes(l *loader.Loader, all []analysis.Diagnostic, mode fixMode, stdout, stderr io.Writer, exit int) int {
	byFile := make(map[string][]analysis.Diagnostic)
	var files []string
	fixable := make(map[string]bool)
	for _, d := range all {
		name := l.Fset.Position(d.Pos).Filename
		if _, ok := byFile[name]; !ok {
			files = append(files, name)
		}
		byFile[name] = append(byFile[name], d)
		if len(d.SuggestedFixes) > 0 {
			fixable[name] = true
		}
	}
	sort.Strings(files)

	cwd, _ := os.Getwd()
	changed := false
	for _, name := range files {
		if !fixable[name] {
			continue
		}
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(stderr, "almvet: %v\n", err)
			exit = 1
			continue
		}
		fixed, applied, err := fixer.Apply(l.Fset, name, src, byFile[name])
		if err != nil {
			fmt.Fprintf(stderr, "almvet: %s: %v\n", name, err)
			exit = 1
			continue
		}
		if applied == 0 || bytes.Equal(fixed, src) {
			continue
		}
		changed = true
		display := name
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				display = rel
			}
		}
		if mode.diff {
			stdout.Write(fixer.Unified(display, src, fixed))
			continue
		}
		if err := os.WriteFile(name, fixed, 0o644); err != nil {
			fmt.Fprintf(stderr, "almvet: %v\n", err)
			exit = 1
			continue
		}
		fmt.Fprintf(stderr, "almvet: %s: applied %d fix(es)\n", display, applied)
	}

	// Report what -fix could not resolve. (After an in-place rewrite the
	// positions refer to the pre-fix file, so only fixless diagnostics
	// are printed — re-run almvet for fresh positions.)
	unfixed := 0
	for _, d := range all {
		if len(d.SuggestedFixes) == 0 {
			fmt.Fprintf(stderr, "%s\n", driver.Format(l.Fset, d))
			unfixed++
		}
	}
	if exit == 0 && (unfixed > 0 || (mode.diff && changed)) {
		exit = 2
	}
	return exit
}

// expandPatterns resolves vet-style package patterns ("./...", "./x",
// import paths) against the loader's module to a sorted import path list.
func expandPatterns(l *loader.Loader, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) error {
		path, err := importPathFor(l, dir)
		if err != nil {
			return err
		}
		if !seen[path] && hasGoFiles(dir) {
			seen[path] = true
			out = append(out, path)
		}
		return nil
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(cwd, strings.TrimSuffix(rest, "/"))
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor" || name == "bin") {
					return filepath.SkipDir
				}
				return add(p)
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) && (strings.HasPrefix(pat, "./") || pat == "." || dirExists(filepath.Join(cwd, pat))) {
			dir = filepath.Join(cwd, pat)
		} else if rest, ok := strings.CutPrefix(pat, l.ModulePath+"/"); ok {
			dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(rest))
		} else if pat == l.ModulePath {
			dir = l.ModuleRoot
		}
		if !dirExists(dir) {
			return nil, fmt.Errorf("package pattern %q: no such directory", pat)
		}
		if err := add(dir); err != nil {
			return nil, err
		}
	}
	// WalkDir yields lexical order per pattern, but multiple patterns can
	// interleave arbitrarily; sort so the load order (and any load errors)
	// is stable regardless of how the package set was spelled.
	sort.Strings(out)
	return out, nil
}

func importPathFor(l *loader.Loader, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.ModulePath)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

func dirExists(p string) bool {
	fi, err := os.Stat(p)
	return err == nil && fi.IsDir()
}

// selfHash content-hashes the running binary for the -V=full tool ID.
func selfHash() string {
	exe, err := os.Executable()
	if err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			return fmt.Sprintf("%x", sum[:6])
		}
	}
	return "unhashed"
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
