// Command almrun executes a single MapReduce job on the simulated
// cluster under a chosen fault-tolerance mode and fault scenario, and
// prints the outcome — the fastest way to poke at the system.
//
// Examples:
//
//	almrun -workload wordcount -size-gb 10 -reduces 1 -mode yarn \
//	       -fail node-of-reduce -at 0.5 -timeline
//	almrun -workload terasort -size-gb 100 -reduces 20 -mode alm \
//	       -fail mof-node -at 0.55 -events
//
// Chaos mode sweeps seeded random gray-failure schedules under all four
// engine modes, asserting the recovery invariants (see DESIGN.md §11):
//
//	almrun -chaos -seeds 50          # seeds 11..60 (from -seed)
//	almrun -chaos -seed 1234 -seeds 1 -v   # reproduce one seed, verbose
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"alm"
	"alm/internal/chaos"
	"alm/internal/metrics"
	"alm/internal/metrics/lint"
	"alm/internal/tournament"
)

func main() {
	var (
		workload = flag.String("workload", "wordcount", "terasort | wordcount | secondarysort")
		sizeGB   = flag.Float64("size-gb", 10, "input size in GB (logical, paper scale)")
		reduces  = flag.Int("reduces", 1, "number of ReduceTasks")
		modeStr  = flag.String("mode", "yarn", "yarn | alg | sfm | alm")
		failKind = flag.String("fail", "none", "none | reduce-task | map-task | node-of-reduce | mof-node | concurrent-reduces | slow-node")
		at       = flag.Float64("at", 0.5, "progress fraction at which the fault fires")
		count    = flag.Int("count", 1, "task count for concurrent-reduces")
		seed     = flag.Int64("seed", 11, "simulation seed")
		events   = flag.Bool("events", false, "dump the failure/recovery event trace")
		timeline = flag.Bool("timeline", false, "dump the reduce-progress timeline")
		iss      = flag.Bool("iss", false, "enable ISS intermediate-data replication (related work)")
		ckpt     = flag.Bool("checkpoint", false, "enable heavyweight full-image checkpointing (related work)")
		slow     = flag.Float64("slow-factor", 0, "with -fail slow-node: disk bandwidth multiplier (e.g. 0.05)")
		shuffle  = flag.String("shuffle", "local", "local | remote: shuffle data path (remote pushes MOFs to the replicated shuffle tier; with -chaos, sweeps the remote invariant matrix)")
		chaosRun = flag.Bool("chaos", false, "run the chaos invariant checker instead of a single job")
		tourney  = flag.Bool("tournament", false, "race the recovery-policy set head-to-head under seeded chaos schedules and print a league table per fault class")
		standing = flag.Bool("standings", false, "with -tournament: print the regret-weighted overall standings instead of the per-class league table")
		seedDet  = flag.Int64("seed-detail", -1, "with -tournament: print the drill-down (schedule + per-policy outcomes) for this seed instead of the league table")
		policies = flag.String("policies", "", "with -tournament: comma-separated policy names (default: every registered policy)")
		seeds    = flag.Int("seeds", 50, "with -chaos/-tournament: how many consecutive seeds to sweep (starting at -seed)")
		workers  = flag.Int("workers", runtime.NumCPU(), "with -chaos/-tournament: parallel sweep engines (output is byte-identical at any worker count)")
		verbose  = flag.Bool("v", false, "with -chaos/-tournament: print each generated schedule")
		metricsP = flag.String("metrics", "", "write the run's metrics snapshot to this path (Prometheus text; .json suffix switches to JSON)")
	)
	flag.Parse()

	remote := false
	switch *shuffle {
	case "local":
	case "remote":
		remote = true
	default:
		fatal(fmt.Errorf("unknown shuffle path %q", *shuffle))
	}
	if *chaosRun {
		os.Exit(runChaos(*seed, *seeds, *workers, remote, *verbose, *metricsP))
	}
	if *tourney {
		os.Exit(runTournament(*seed, *seeds, *workers, *policies, *verbose, *standing, *seedDet))
	}

	w, err := alm.WorkloadByName(*workload)
	if err != nil {
		fatal(err)
	}
	var mode alm.Mode
	switch *modeStr {
	case "yarn":
		mode = alm.ModeYARN
	case "alg":
		mode = alm.ModeALG
	case "sfm":
		mode = alm.ModeSFM
	case "alm":
		mode = alm.ModeALM
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeStr))
	}
	var plan *alm.FaultPlan
	switch *failKind {
	case "none":
	case "reduce-task":
		plan = alm.FailTaskAtProgress(alm.ReduceTask, 0, *at)
	case "map-task":
		plan = alm.FailTaskAtProgress(alm.MapTask, 0, *at)
	case "node-of-reduce":
		plan = alm.StopNodeOfTaskAtReduceProgress(alm.ReduceTask, 0, *at)
	case "mof-node":
		plan = alm.StopMOFNodeAtJobProgress(*at)
	case "concurrent-reduces":
		plan = alm.FailTasksAtProgress(alm.ReduceTask, *count, *at)
	case "slow-node":
		factor := *slow
		if factor <= 0 {
			factor = 0.05
		}
		plan = alm.SlowNodeOfTaskAtReduceProgress(alm.ReduceTask, 0, *at, factor)
	default:
		fatal(fmt.Errorf("unknown fault kind %q", *failKind))
	}

	spec := alm.JobSpec{
		Workload:   w,
		InputBytes: int64(*sizeGB * float64(1<<30)),
		NumReduces: *reduces,
		Mode:       mode,
		Seed:       *seed,
	}
	if remote {
		spec.Shuffle = alm.ShuffleOptions{Remote: true}
	}
	if *iss {
		spec.ISS = alm.ISSOptions{Enabled: true}
	}
	if *ckpt {
		spec.Checkpoint = alm.CheckpointOptions{Enabled: true}
	}
	opts := []alm.RunOption{alm.WithFaults(plan), alm.WithTrace()}
	if *metricsP != "" {
		opts = append(opts, alm.WithMetrics())
	}
	res, err := alm.Run(spec, alm.DefaultClusterSpec(), opts...)
	if err != nil {
		fatal(err)
	}
	if *metricsP != "" {
		if err := writeMetrics(*metricsP, res.Metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics         written to %s\n", *metricsP)
	}

	fmt.Printf("workload        %s (%.1f GB, %d reducers, mode %v)\n", *workload, *sizeGB, *reduces, mode)
	if res.Completed {
		fmt.Printf("status          completed in %v (virtual time)\n", res.Duration)
	} else {
		fmt.Printf("status          FAILED: %s\n", res.FailReason)
	}
	fmt.Printf("map phase       done at %v\n", res.MapPhaseDone)
	fmt.Printf("output          %d records, %d logical bytes\n", len(res.Output), res.OutputLogicalBytes)
	fmt.Printf("failures        map attempts %d, reduce attempts %d (additional on healthy nodes: %d)\n",
		res.MapAttemptFailures, res.ReduceAttemptFailures, res.AdditionalReduceFailures)
	if len(res.Counters) > 0 {
		fmt.Printf("counters        %v\n", res.Counters)
	}
	if *events {
		fmt.Println("\nevents:")
		fmt.Print(res.Trace.Dump())
	}
	if *timeline {
		fmt.Println("\nreduce-progress timeline:")
		for _, p := range res.Trace.Series("reduce-progress") {
			fmt.Printf("  %7.1fs %6.1f%%\n", p.At.Seconds(), p.Value*100)
		}
	}
	if !res.Completed {
		os.Exit(1)
	}
}

// runChaos sweeps n consecutive chaos seeds under all four engine modes
// (or, with remote, the {yarn,alm} x remote-shuffle matrix with tier
// faults in the draw) across workers parallel engines, and reports
// invariant violations with a minimal reproducer command line each.
// Returns the process exit code.
func runChaos(first int64, n, workers int, remote, verbose bool, metricsPath string) int {
	if n < 1 {
		n = 1
	}
	budget := chaos.DefaultBudget()
	modes := chaos.Modes
	sweep := chaos.CheckSeeds
	if remote {
		budget.TierFaults = true
		modes = chaos.RemoteModes
		sweep = chaos.CheckSeedsRemote
		fmt.Printf("chaos: sweeping %d seed(s) from %d under modes yarn|alm with the remote shuffle tier\n", n, first)
	} else {
		fmt.Printf("chaos: sweeping %d seed(s) from %d under modes yarn|alg|sfm|alm\n", n, first)
	}
	if verbose {
		sh, _ := chaos.CheckShape()
		if remote {
			sh.TierNodes = chaos.RemoteTierNodes
		}
		for seed := first; seed < first+int64(n); seed++ {
			sched := chaos.Generate(seed, budget, sh)
			fmt.Print(sched.String())
		}
	}
	checked := 0
	reg := metrics.NewRegistry()
	all := sweep(first, n, budget, workers, reg, func(seed int64, bad []chaos.Violation) {
		checked++
		status := "ok"
		if len(bad) > 0 {
			status = fmt.Sprintf("%d VIOLATION(S)", len(bad))
		}
		fmt.Printf("  seed %-6d [%d/%d] %s\n", seed, checked, n, status)
	})
	if metricsPath != "" {
		if err := writeMetrics(metricsPath, reg.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "almrun:", err)
			return 2
		}
	}
	if len(all) == 0 {
		fmt.Printf("chaos: all invariants held over %d seed(s) x %d modes\n", n, len(modes))
		return 0
	}
	fmt.Printf("\nchaos: %d invariant violation(s):\n", len(all))
	for _, v := range all {
		fmt.Printf("  %s\n      reproduce: %s\n", v, v.Reproducer())
	}
	return 1
}

// runTournament races the recovery-policy set over n consecutive chaos
// seeds and prints the deterministic per-fault-class league table
// (tournament.Result.Format, byte-identical across runs — `make
// tournament-smoke` diffs it against a checked-in golden), the
// regret-weighted standings (-standings), or one seed's drill-down
// (-seed-detail). Returns the process exit code.
func runTournament(first int64, n, workers int, policiesCSV string, verbose, standings bool, seedDetail int64) int {
	opts := tournament.Options{FirstSeed: first, Seeds: n, Workers: workers}
	if policiesCSV != "" {
		for _, p := range strings.Split(policiesCSV, ",") {
			if p = strings.TrimSpace(p); p != "" {
				opts.Policies = append(opts.Policies, p)
			}
		}
	}
	if verbose {
		sh, _ := chaos.CheckShape()
		for seed := first; seed < first+int64(n); seed++ {
			sched := chaos.Generate(seed, chaos.DefaultBudget(), sh)
			fmt.Print(sched.String())
		}
	}
	res, err := tournament.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "almrun:", err)
		return 2
	}
	switch {
	case seedDetail >= 0:
		fmt.Print(res.FormatSeedDetail(seedDetail))
	case standings:
		fmt.Print(res.FormatStandings())
	default:
		fmt.Print(res.Format())
	}
	return 0
}

// writeMetrics renders the snapshot to path — Prometheus text by
// default, JSON when the path ends in .json — validating the Prometheus
// form with the promtext checker before anything reaches disk.
func writeMetrics(path string, snap *alm.MetricsSnapshot) error {
	if snap == nil {
		snap = &alm.MetricsSnapshot{}
	}
	data := snap.Prometheus()
	if err := lint.Check(data); err != nil {
		return fmt.Errorf("metrics failed validation: %w", err)
	}
	if strings.HasSuffix(path, ".json") {
		data = snap.JSON()
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "almrun:", err)
	os.Exit(2)
}
