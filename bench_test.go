package alm

import (
	"testing"

	"alm/internal/experiments"
)

// Each benchmark regenerates one of the paper's evaluation artifacts
// (Section V figures and tables). The simulations are deterministic; the
// benchmark time is the wall cost of reproducing the artifact, and key
// reproduced quantities are attached as custom metrics so `go test
// -bench` output doubles as a compact reproduction report.
//
// Benchmarks run at 1/8 of the paper's dataset sizes to keep `go test
// -bench=.` practical; `cmd/almbench` (no -scale flag) reproduces the
// full-scale numbers recorded in EXPERIMENTS.md.

const benchScale = 1.0 / 8

func benchExperiment(b *testing.B, id string, metrics func(*experiments.Table, *testing.B)) {
	b.Helper()
	f, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var tbl *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = f(experiments.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
	}
	if metrics != nil && tbl != nil {
		metrics(tbl, b)
	}
}

func metricFrom(tbl *experiments.Table, b *testing.B, label, column, name string) {
	if v, ok := tbl.Value(label, column); ok {
		b.ReportMetric(v, name)
	}
}

// BenchmarkFig01RecoveryTime — Fig. 1: one ReduceTask failure vs many
// MapTask failures.
func BenchmarkFig01RecoveryTime(b *testing.B) {
	benchExperiment(b, "fig1", func(t *experiments.Table, b *testing.B) {
		metricFrom(t, b, "1 ReduceTask failure", "recovery_time_s", "reduce_recovery_s")
		metricFrom(t, b, "200 MapTask failures", "recovery_time_s", "maps200_recovery_s")
	})
}

// BenchmarkFig02DelayedExecution — Fig. 2: job delay from single task
// failures.
func BenchmarkFig02DelayedExecution(b *testing.B) {
	benchExperiment(b, "fig2", func(t *experiments.Table, b *testing.B) {
		metricFrom(t, b, "terasort 1 reduce failure @75%", "slowdown_pct", "terasort_reduce75_slowdown_pct")
		metricFrom(t, b, "wordcount 1 reduce failure @75%", "slowdown_pct", "wordcount_reduce75_slowdown_pct")
	})
}

// BenchmarkFig03TemporalAmplification — Fig. 3: the repeated failure of a
// recovered ReduceTask under stock YARN.
func BenchmarkFig03TemporalAmplification(b *testing.B) {
	benchExperiment(b, "fig3", nil)
}

// BenchmarkFig04SpatialAmplification — Fig. 4: healthy reducers infected
// by one node failure.
func BenchmarkFig04SpatialAmplification(b *testing.B) {
	benchExperiment(b, "fig4", nil)
}

// BenchmarkFig08ALGRecovery — Fig. 8: YARN vs ALG under single
// ReduceTask failures at 10-90% progress.
func BenchmarkFig08ALGRecovery(b *testing.B) {
	benchExperiment(b, "fig8", func(t *experiments.Table, b *testing.B) {
		metricFrom(t, b, "wordcount failure @90%", "alg_gain_pct", "wordcount90_alg_gain_pct")
		metricFrom(t, b, "terasort failure @90%", "alg_gain_pct", "terasort90_alg_gain_pct")
	})
}

// BenchmarkFig09SFMMigration — Fig. 9: node failures during the reduce
// phase, YARN vs SFM.
func BenchmarkFig09SFMMigration(b *testing.B) {
	benchExperiment(b, "fig9", func(t *experiments.Table, b *testing.B) {
		metricFrom(t, b, "wordcount node fail @90%", "sfm_gain_pct", "wordcount90_sfm_gain_pct")
	})
}

// BenchmarkFig10SFMTimeline — Fig. 10: SFM eliminates the repeat failure.
func BenchmarkFig10SFMTimeline(b *testing.B) {
	benchExperiment(b, "fig10", nil)
}

// BenchmarkTable02SpatialCure — Table II: additional failures and
// execution time, YARN vs SFM.
func BenchmarkTable02SpatialCure(b *testing.B) {
	benchExperiment(b, "table2", func(t *experiments.Table, b *testing.B) {
		var yarn, sfm float64
		for _, r := range t.Rows {
			if len(r.Values) > 0 {
				if r.Label[0] == 'y' {
					yarn += r.Values[0]
				} else {
					sfm += r.Values[0]
				}
			}
		}
		b.ReportMetric(yarn, "yarn_additional_failures")
		b.ReportMetric(sfm, "sfm_additional_failures")
	})
}

// BenchmarkFig11ALGOverhead — Fig. 11: failure-free ALG overhead across
// sizes.
func BenchmarkFig11ALGOverhead(b *testing.B) {
	benchExperiment(b, "fig11", func(t *experiments.Table, b *testing.B) {
		metricFrom(t, b, "terasort 320 GB", "overhead_pct", "alg320_overhead_pct")
	})
}

// BenchmarkFig12LoggingFrequency — Fig. 12: logging-interval sweep.
func BenchmarkFig12LoggingFrequency(b *testing.B) {
	benchExperiment(b, "fig12", nil)
}

// BenchmarkFig13ReplicationLevels — Fig. 13: node/rack/cluster ALG
// replication cost on the reduce stage.
func BenchmarkFig13ReplicationLevels(b *testing.B) {
	benchExperiment(b, "fig13", func(t *experiments.Table, b *testing.B) {
		metricFrom(t, b, "320 GB, rack-level", "vs_node_pct", "rack320_vs_node_pct")
		metricFrom(t, b, "320 GB, cluster-level", "vs_node_pct", "cluster320_vs_node_pct")
	})
}

// BenchmarkFig14ConcurrentFailures — Fig. 14: 1/5/10 concurrent reduce
// failures with growing per-reducer data.
func BenchmarkFig14ConcurrentFailures(b *testing.B) {
	benchExperiment(b, "fig14", func(t *experiments.Table, b *testing.B) {
		metricFrom(t, b, "5 failures, 32 GB/reducer", "sfm_gain_pct", "f5_32gb_sfm_gain_pct")
	})
}

// BenchmarkFig15ALGplusSFM — Fig. 15: SFM vs SFM+ALG recovery.
func BenchmarkFig15ALGplusSFM(b *testing.B) {
	benchExperiment(b, "fig15", func(t *experiments.Table, b *testing.B) {
		metricFrom(t, b, "secondarysort", "alg_extra_gain_pct", "secondarysort_alg_gain_pct")
	})
}

// BenchmarkAblations — extension: per-mechanism contribution.
func BenchmarkAblations(b *testing.B) {
	benchExperiment(b, "ablations", nil)
}

// BenchmarkRelatedWork — extension: ALM vs heavyweight checkpointing and
// ISS intermediate-data replication.
func BenchmarkRelatedWork(b *testing.B) {
	benchExperiment(b, "related", func(t *experiments.Table, b *testing.B) {
		metricFrom(t, b, "heavyweight checkpointing (Sec. III strawman)", "overhead_pct", "ckpt_overhead_pct")
	})
}

// BenchmarkSingleJob measures the raw simulation throughput of one
// paper-scale job end to end (Terasort 100 GB, 20 reducers, ALM).
func BenchmarkSingleJob(b *testing.B) {
	spec := JobSpec{
		Workload:   Terasort(),
		InputBytes: 100 << 30,
		NumReduces: 20,
		Mode:       ModeALM,
		Seed:       11,
	}
	for i := 0; i < b.N; i++ {
		res, err := Run(spec, DefaultClusterSpec(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatalf("job failed: %s", res.FailReason)
		}
	}
}
